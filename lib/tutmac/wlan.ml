(* Fleet-scale TUTWLAN: N terminals contending on one slotted shared
   medium.

   The paper models a single TUTMAC terminal against a loopback radio;
   this module generalises the scenario to a fleet.  Each terminal's MAC
   is a real EFSM (fragment progression, binary-exponential-backoff
   retry policy, graceful-departure states) executed under either EFSM
   engine, so the engine-parity guarantee of the single-terminal
   scenario carries over to the fleet.  The channel itself is host code
   around one [Sim.Engine]:

   - transmissions register at slot boundaries; the first registrant of
     a slot schedules a zero-delay resolution event, which by the strict
     [(time, seq)] contract fires after every same-slot registration
     (registrations were all scheduled at earlier instants, so they
     carry smaller sequence numbers);
   - two or more registrants corrupt each other (collision); a single
     registrant is then subjected to the fault plan's channel injectors
     (per-terminal loss and interference bursts) and to the liveness of
     its destination;
   - outcomes (receive + ack, or failure) land one slot later, at the
     end of the airtime.

   Every random draw comes from a per-terminal splitmix stream (arrival
   jitter, backoff) or a per-(spec, terminal) stream inside
   [Fault.Injector] (channel faults), and every event is scheduled from
   a deterministic closure, so a [(plan, seed)] pair replays
   bit-identically across engines, trace backends, repeated runs and
   any aggregation [jobs] count. *)

type churn_action = Leave | Rejoin

type churn_event = { terminal : int; at_ns : int; action : churn_action }

type config = {
  terminals : int;
  duration_ns : int;
  slot_ns : int;
  seed : int;
  mix : Workload.profile list;
  max_retries : int;
  cw_min : int;
  cw_max : int;
  churn : churn_event list;
  faults : Fault.Plan.t;
  fault_seed : int;
  jobs : int;
  engine : Codegen.Runtime.engine_kind;
  trace_backend : Sim.Trace.backend;
}

let default =
  {
    terminals = 8;
    duration_ns = 2_000_000_000;
    slot_ns = 50_000;
    seed = 1;
    mix = Workload.default_mix;
    max_retries = 6;
    cw_min = 2;
    cw_max = 64;
    churn = [];
    faults = Fault.Plan.empty;
    fault_seed = 1;
    jobs = 1;
    engine = Codegen.Runtime.Compiled;
    trace_backend = Sim.Trace.Arena;
  }

(* ---- churn specs --------------------------------------------------- *)

let churn_of_string text =
  (* "4@200-800,5@300": terminal 4 leaves at 200 ms and rejoins at
     800 ms; terminal 5 leaves at 300 ms for good. *)
  let ms_field spec what s =
    match int_of_string_opt s with
    | Some ms when ms >= 0 -> Ok ms
    | _ -> Error (Printf.sprintf "%S: bad %s %S" spec what s)
  in
  let item spec =
    match String.index_opt spec '@' with
    | None ->
      Error (Printf.sprintf "%S: expected TERMINAL@LEAVE_MS[-REJOIN_MS]" spec)
    | Some at -> (
      let term = String.sub spec 0 at in
      let times = String.sub spec (at + 1) (String.length spec - at - 1) in
      match int_of_string_opt term with
      | None -> Error (Printf.sprintf "%S: bad terminal index %S" spec term)
      | Some terminal when terminal < 0 ->
        Error (Printf.sprintf "%S: bad terminal index %S" spec term)
      | Some terminal -> (
        let leave_s, rejoin_s =
          match String.index_opt times '-' with
          | None -> (times, None)
          | Some dash ->
            ( String.sub times 0 dash,
              Some
                (String.sub times (dash + 1) (String.length times - dash - 1))
            )
        in
        match ms_field spec "leave time" leave_s with
        | Error e -> Error e
        | Ok leave_ms -> (
          let leave_ev =
            { terminal; at_ns = leave_ms * 1_000_000; action = Leave }
          in
          match rejoin_s with
          | None -> Ok [ leave_ev ]
          | Some r -> (
            match ms_field spec "rejoin time" r with
            | Error e -> Error e
            | Ok rejoin_ms when rejoin_ms <= leave_ms ->
              Error
                (Printf.sprintf "%S: rejoin %d ms must be after leave %d ms"
                   spec rejoin_ms leave_ms)
            | Ok rejoin_ms ->
              Ok
                [
                  leave_ev;
                  { terminal; at_ns = rejoin_ms * 1_000_000; action = Rejoin };
                ]))))
  in
  if String.trim text = "" then Ok []
  else
    let rec go acc = function
      | [] -> Ok (List.concat (List.rev acc))
      | spec :: rest -> (
        match item (String.trim spec) with
        | Error e -> Error ("churn: " ^ e)
        | Ok evs -> go (evs :: acc) rest)
    in
    go [] (String.split_on_char ',' text)

(* ---- the MAC state machine ---------------------------------------- *)

let sig_frame = "WlFrame"
let sig_txreq = "WlTxReq"
let sig_txok = "WlTxOk"
let sig_txfail = "WlTxFail"
let sig_backoff = "WlBackoff"
let sig_drop = "WlDrop"
let sig_done = "WlDone"
let sig_rx = "WlRx"
let sig_deliver = "WlDeliver"
let sig_leave = "WlLeave"
let sig_join = "WlJoin"

let mac_machine ~max_retries ~cw_min ~cw_max =
  let open Efsm.Action in
  let on s = Efsm.Machine.On_signal s in
  let tr = Efsm.Machine.transition in
  let rx_actions =
    [
      assign "rx_frags" (v "rx_frags" + i 1);
      If
        ( p "last" = i 1,
          [
            assign "rx_frames" (v "rx_frames" + i 1);
            send ~port:"up" sig_deliver ~args:[ p "seq" ];
          ],
          [] );
    ]
  in
  Efsm.Machine.make ~name:"WlanMac"
    ~states:[ "idle"; "busy"; "departed" ]
    ~initial:"idle"
    ~variables:
      [
        ("cur_seq", V_int 0);
        ("frags_left", V_int 0);
        ("frag_i", V_int 0);
        ("retries", V_int 0);
        ("cw", V_int cw_min);
        ("tx_frames", V_int 0);
        ("abandoned", V_int 0);
        ("rx_frags", V_int 0);
        ("rx_frames", V_int 0);
      ]
    [
      (* A frame reaches the head of the queue: transmit fragment 0. *)
      tr ~src:"idle" ~dst:"busy" (on sig_frame)
        ~actions:
          [
            assign "cur_seq" (p "seq");
            assign "frags_left" (p "frags");
            assign "frag_i" (i 0);
            assign "retries" (i 0);
            assign "cw" (i cw_min);
            send ~port:"phy" sig_txreq ~args:[ p "seq"; i 0 ];
          ];
      (* Fragment acked; more remain: window and retry budget reset. *)
      tr ~src:"busy" ~dst:"busy" (on sig_txok)
        ~guard:(v "frags_left" > i 1)
        ~actions:
          [
            assign "frags_left" (v "frags_left" - i 1);
            assign "frag_i" (v "frag_i" + i 1);
            assign "retries" (i 0);
            assign "cw" (i cw_min);
            send ~port:"phy" sig_txreq ~args:[ v "cur_seq"; v "frag_i" ];
          ];
      (* Last fragment acked: the frame is through. *)
      tr ~src:"busy" ~dst:"idle" (on sig_txok)
        ~guard:(v "frags_left" <= i 1)
        ~actions:
          [
            assign "tx_frames" (v "tx_frames" + i 1);
            send ~port:"phy" sig_done ~args:[ v "cur_seq" ];
          ];
      (* Failed attempt within budget: double the window, back off. *)
      tr ~src:"busy" ~dst:"busy" (on sig_txfail)
        ~guard:(v "retries" < i max_retries)
        ~actions:
          [
            assign "retries" (v "retries" + i 1);
            assign "cw" (v "cw" * i 2);
            If (v "cw" > i cw_max, [ assign "cw" (i cw_max) ], []);
            send ~port:"phy" sig_backoff ~args:[ v "cw"; v "retries" ];
          ];
      (* Retry budget exhausted: abandon cleanly, serve the next frame. *)
      tr ~src:"busy" ~dst:"idle" (on sig_txfail)
        ~guard:(v "retries" >= i max_retries)
        ~actions:
          [
            assign "abandoned" (v "abandoned" + i 1);
            send ~port:"phy" sig_drop ~args:[ v "cur_seq" ];
          ];
      tr ~src:"idle" ~dst:"idle" (on sig_rx) ~actions:rx_actions;
      tr ~src:"busy" ~dst:"busy" (on sig_rx) ~actions:rx_actions;
      (* Churn: a departed MAC discards everything (UML discard
         semantics give the D trace lines) until it rejoins. *)
      tr ~src:"idle" ~dst:"departed" (on sig_leave) ~actions:[];
      tr ~src:"busy" ~dst:"departed" (on sig_leave) ~actions:[];
      tr ~src:"departed" ~dst:"idle" (on sig_join)
        ~actions:
          [
            assign "frags_left" (i 0);
            assign "frag_i" (i 0);
            assign "retries" (i 0);
            assign "cw" (i cw_min);
          ];
    ]

(* ---- engine duality ------------------------------------------------ *)

type exec = Ref of Efsm.Interp.t | Comp of Efsm.Compiled.t

let exec_dispatch e ~signal ~args =
  match e with
  | Ref t -> Efsm.Interp.dispatch t ~signal ~args
  | Comp t -> Efsm.Compiled.dispatch t ~signal ~args

let exec_state = function
  | Ref t -> Efsm.Interp.state t
  | Comp t -> Efsm.Compiled.state t

let exec_var e name =
  let value =
    match e with
    | Ref t -> Efsm.Interp.read_var t name
    | Comp t -> Efsm.Compiled.read_var t name
  in
  match value with Some (Efsm.Action.V_int n) -> n | _ -> 0

(* ---- frames and terminals ------------------------------------------ *)

type status = Unresolved | Delivered | Abandoned | Flushed

type frame = {
  f_seq : int;
  f_src : int;
  f_dst : int;
  f_frags : int;
  f_born : int;
  mutable f_status : status;
}

type terminal = {
  id : int;
  name : string;
  name_id : int;  (* interned in the trace *)
  profile : Workload.profile;
  class_name : string;
  exec : exec;
  arrivals : Prng.t;
  backoff : Prng.t;
  mutable alive : bool;
  mutable epoch : int;  (* bumped at departure; voids in-flight outcomes *)
  mutable cur : frame option;
  mutable att_seq : int;
  mutable att_frag : int;
  queue : frame Queue.t;
  mutable pending_tx : Sim.Engine.handle;
  mutable burst_until : int;
  mutable burst_left : int;  (* bursty profile: frames left in burst *)
  mutable vframe : int;  (* video profile: frame counter *)
  latency : Obs.Histogram.t;  (* e2e ns of frames this terminal sent *)
  retry_dist : Obs.Histogram.t;  (* attempt number of every retry *)
  mutable offered : int;
  mutable delivered : int;  (* frames it originated, delivered to dst *)
  mutable abandoned : int;
  mutable flushed : int;
  mutable tx_attempts : int;
  mutable collided : int;
  mutable retried : int;
}

(* ---- results ------------------------------------------------------- *)

type terminal_stats = {
  ts_id : int;
  ts_class : string;
  ts_alive : bool;
  ts_offered : int;
  ts_delivered : int;
  ts_abandoned : int;
  ts_flushed : int;
  ts_attempts : int;
  ts_collisions : int;
  ts_retries : int;
  ts_mac_tx_frames : int;  (* read back from the MAC's own variables *)
  ts_mac_rx_frames : int;
  ts_mac_rx_frags : int;
}

type result = {
  r_config : config;
  trace : Sim.Trace.t;
  events : int;
  offered : int;
  delivered : int;
  abandoned : int;
  flushed : int;
  unresolved : int;
  attempts : int;
  slots_used : int;
  collisions : int;
  retries : int;
  frags_delivered : int;
  leaves : int;
  joins : int;
  latency : (string * Obs.Histogram.snapshot) list;
      (* per traffic class, sorted by class name *)
  retry_snapshot : Obs.Histogram.snapshot;
  per_terminal : terminal_stats array;
  fault_stats : Fault.Stats.t option;
}

(* ---- deterministic aggregation ------------------------------------- *)

(* Merge per-terminal histogram snapshots into per-class snapshots.
   With [jobs > 1] contiguous terminal chunks merge on a domain pool;
   the merge algebra is commutative and associative and chunk results
   fold in chunk order, so the outcome is identical for every jobs
   count. *)
let aggregate ~jobs ~classes ~class_of lat_snaps retry_snaps =
  let n = Array.length lat_snaps in
  let merge_range lo hi =
    let by_class =
      List.map
        (fun cls ->
          let merged = ref Obs.Histogram.empty in
          for idx = lo to hi - 1 do
            if String.equal (class_of idx) cls then
              merged := Obs.Histogram.merge !merged lat_snaps.(idx)
          done;
          (cls, !merged))
        classes
    in
    let retry = ref Obs.Histogram.empty in
    for idx = lo to hi - 1 do
      retry := Obs.Histogram.merge !retry retry_snaps.(idx)
    done;
    (by_class, !retry)
  in
  let chunks =
    if jobs <= 1 || n <= 1 then [ merge_range 0 n ]
    else begin
      let jobs = min jobs n in
      let per = (n + jobs - 1) / jobs in
      let thunks =
        List.init jobs (fun j ->
            let lo = j * per in
            let hi = min n ((j + 1) * per) in
            fun () -> merge_range lo (max lo hi))
      in
      Dse.Pool.with_pool ~domains:jobs (fun pool -> Dse.Pool.map pool thunks)
    end
  in
  List.fold_left
    (fun (acc_cls, acc_retry) (by_class, retry) ->
      ( List.map2
          (fun (cls, acc) (_, part) -> (cls, Obs.Histogram.merge acc part))
          acc_cls by_class,
        Obs.Histogram.merge acc_retry retry ))
    ( List.map (fun cls -> (cls, Obs.Histogram.empty)) classes,
      Obs.Histogram.empty )
    chunks

(* ---- the simulation ------------------------------------------------ *)

let validate config =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  if config.terminals < 1 then fail "Wlan.run: terminals must be >= 1";
  if config.duration_ns < 0 then fail "Wlan.run: duration must be >= 0";
  if config.slot_ns < 1 then fail "Wlan.run: slot_ns must be >= 1";
  if config.max_retries < 0 then fail "Wlan.run: max_retries must be >= 0";
  if config.cw_min < 1 then fail "Wlan.run: cw_min must be >= 1";
  if config.cw_max < config.cw_min then
    fail "Wlan.run: cw_max must be >= cw_min";
  if config.jobs < 1 then fail "Wlan.run: jobs must be >= 1";
  List.iter
    (fun ev ->
      if ev.terminal < 0 || ev.terminal >= config.terminals then
        fail "Wlan.run: churn names terminal %d (have %d)" ev.terminal
          config.terminals;
      if ev.at_ns < 0 then fail "Wlan.run: churn time must be >= 0")
    config.churn

let run ?(obs = Obs.Scope.null ()) config =
  validate config;
  let n = config.terminals in
  let slot = config.slot_ns in
  let trace = Sim.Trace.create ~backend:config.trace_backend () in
  let sim_backend =
    match config.engine with
    | Codegen.Runtime.Reference -> `Binary_heap
    | Codegen.Runtime.Compiled -> `Calendar
  in
  let engine = Sim.Engine.create ~backend:sim_backend ~obs () in
  let metrics = Obs.Scope.metrics obs in
  let m_offered = Obs.Metrics.counter metrics "wlan.offered"
  and m_delivered = Obs.Metrics.counter metrics "wlan.delivered"
  and m_abandoned = Obs.Metrics.counter metrics "wlan.abandoned"
  and m_flushed = Obs.Metrics.counter metrics "wlan.flushed"
  and m_attempts = Obs.Metrics.counter metrics "wlan.attempts"
  and m_collisions = Obs.Metrics.counter metrics "wlan.collisions"
  and m_retries = Obs.Metrics.counter metrics "wlan.retries"
  and m_frags = Obs.Metrics.counter metrics "wlan.frags_delivered" in
  let injector =
    if Fault.Plan.is_empty config.faults then None
    else
      Some (Fault.Injector.create ~plan:config.faults ~seed:config.fault_seed)
  in
  (* Interned names for the hot-path trace appenders. *)
  let id_env = Sim.Trace.intern trace "wl_env"
  and id_chan = Sim.Trace.intern trace "chan"
  and id_frame_sig = Sim.Trace.intern trace sig_frame
  and id_txreq = Sim.Trace.intern trace sig_txreq
  and id_txok = Sim.Trace.intern trace sig_txok
  and id_txfail = Sim.Trace.intern trace sig_txfail
  and id_drop = Sim.Trace.intern trace sig_drop
  and id_done = Sim.Trace.intern trace sig_done
  and id_rx = Sim.Trace.intern trace sig_rx
  and id_deliver = Sim.Trace.intern trace sig_deliver
  and id_leave_sig = Sim.Trace.intern trace sig_leave
  and id_join_sig = Sim.Trace.intern trace sig_join in
  let machine =
    mac_machine ~max_retries:config.max_retries ~cw_min:config.cw_min
      ~cw_max:config.cw_max
  in
  let program =
    match config.engine with
    | Codegen.Runtime.Compiled -> Some (Efsm.Compiled.compile machine)
    | Codegen.Runtime.Reference -> None
  in
  let terminals =
    Array.init n (fun id ->
        let name = Printf.sprintf "t%03d" id in
        {
          id;
          name;
          name_id = Sim.Trace.intern trace name;
          profile = Workload.profile_for ~mix:config.mix id;
          class_name =
            Workload.profile_name (Workload.profile_for ~mix:config.mix id);
          exec =
            (match program with
            | Some prog -> Comp (Efsm.Compiled.create prog)
            | None -> Ref (Efsm.Interp.create machine));
          arrivals = Prng.split ~seed:config.seed ~stream:(2 * id);
          backoff = Prng.split ~seed:config.seed ~stream:((2 * id) + 1);
          alive = true;
          epoch = 0;
          cur = None;
          att_seq = -1;
          att_frag = 0;
          queue = Queue.create ();
          pending_tx = Sim.Engine.never;
          burst_until = -1;
          burst_left = 0;
          vframe = 0;
          latency = Obs.Histogram.create ();
          retry_dist = Obs.Histogram.create ();
          offered = 0;
          delivered = 0;
          abandoned = 0;
          flushed = 0;
          tx_attempts = 0;
          collided = 0;
          retried = 0;
        })
  in
  (* Frame table, dense in sequence number. *)
  let frames = ref (Array.make 1024 None) in
  let n_frames = ref 0 in
  let add_frame f =
    if !n_frames >= Array.length !frames then begin
      let bigger = Array.make (2 * Array.length !frames) None in
      Array.blit !frames 0 bigger 0 !n_frames;
      frames := bigger
    end;
    !frames.(!n_frames) <- Some f;
    incr n_frames
  in
  let frame_of_seq seq = Option.get !frames.(seq) in
  (* Channel slot bucket: registrations of the slot being collected. *)
  let chan_slot = ref (-1) in
  let chan_txs : terminal list ref = ref [] in
  let slots_used = ref 0 in
  let frags_through = ref 0 in
  let collisions = ref 0 in
  let leaves = ref 0 in
  let joins = ref 0 in
  let record_fault ~time kind target info =
    Sim.Trace.record trace
      (Sim.Trace.Fault { time = Int64.of_int time; kind; target; info })
  in
  let next_boundary now = ((now / slot) + 1) * slot in
  (* [dispatch_mac] and the effect interpreter are mutually recursive
     (an effect of one dispatch can trigger another dispatch); the knot
     is tied through a forward reference. *)
  let apply_effect_fwd =
    ref (fun (_ : terminal) (_ : Efsm.Action.effect) -> ())
  in
  let dispatch_mac t ~sender ~sig_id ~signal ~args ~words ~tag ~record =
    let now = Sim.Engine.now_ns engine in
    if record then
      Sim.Trace.record_signal trace ~time:now ~sender ~receiver:t.name_id
        ~signal:sig_id ~words ~tag;
    let before = exec_state t.exec in
    let step = exec_dispatch t.exec ~signal ~args in
    (match step.Efsm.Interp.fired with
    | None ->
      Sim.Trace.record_discard trace ~time:now ~process:t.name_id
        ~signal:sig_id
    | Some _ ->
      let after = exec_state t.exec in
      if not (String.equal before after) then
        Sim.Trace.record_state_change trace ~time:now ~process:t.name_id
          ~from_:(Sim.Trace.intern trace before)
          ~to_:(Sim.Trace.intern trace after));
    List.iter (fun eff -> !apply_effect_fwd t eff) step.Efsm.Interp.effects
  in
  let vint = function Efsm.Action.V_int x -> x | Efsm.Action.V_bool _ -> 0 in
  let rec apply_effect t eff =
    let now = Sim.Engine.now_ns engine in
    match eff with
    | Efsm.Action.Eff_compute cycles ->
      Sim.Trace.record_exec trace ~time:now ~process:t.name_id ~cycles
    | Efsm.Action.Eff_send { signal; args; _ } ->
      if String.equal signal sig_txreq then begin
        let seq = vint (List.nth args 0) and frag = vint (List.nth args 1) in
        t.att_seq <- seq;
        t.att_frag <- frag;
        Sim.Trace.record_signal trace ~time:now ~sender:t.name_id
          ~receiver:id_chan ~signal:id_txreq ~words:16 ~tag:seq;
        t.pending_tx <-
          Sim.Engine.schedule_at_ns engine ~time:(next_boundary now)
            (attempt t)
      end
      else if String.equal signal sig_backoff then begin
        let cw = vint (List.nth args 0) and retry = vint (List.nth args 1) in
        t.retried <- t.retried + 1;
        Obs.Metrics.inc m_retries;
        Obs.Histogram.record t.retry_dist retry;
        Sim.Trace.record_retransmit trace ~time:now ~sender:t.name_id
          ~receiver:id_chan ~signal:id_txreq ~attempt:retry;
        let k = Prng.int t.backoff cw in
        t.pending_tx <-
          Sim.Engine.schedule_at_ns engine
            ~time:(next_boundary now + (k * slot))
            (attempt t)
      end
      else if String.equal signal sig_drop then begin
        let seq = vint (List.nth args 0) in
        Sim.Trace.record_signal trace ~time:now ~sender:t.name_id
          ~receiver:id_chan ~signal:id_drop ~words:2 ~tag:seq;
        record_fault ~time:now "mac_abandon" t.name (string_of_int seq);
        (frame_of_seq seq).f_status <- Abandoned;
        t.abandoned <- t.abandoned + 1;
        Obs.Metrics.inc m_abandoned;
        t.cur <- None;
        start_next t
      end
      else if String.equal signal sig_done then begin
        let seq = vint (List.nth args 0) in
        Sim.Trace.record_signal trace ~time:now ~sender:t.name_id
          ~receiver:id_chan ~signal:id_done ~words:2 ~tag:seq;
        t.cur <- None;
        start_next t
      end
      else if String.equal signal sig_deliver then begin
        (* [t] is the receiver here; latency is attributed to the
           sender's traffic class. *)
        let seq = vint (List.nth args 0) in
        let f = frame_of_seq seq in
        Sim.Trace.record_signal trace ~time:now ~sender:t.name_id
          ~receiver:id_env ~signal:id_deliver ~words:100 ~tag:seq;
        f.f_status <- Delivered;
        let src = terminals.(f.f_src) in
        src.delivered <- src.delivered + 1;
        Obs.Metrics.inc m_delivered;
        Obs.Histogram.record src.latency (now - f.f_born)
      end
  and start_next t =
    if t.alive && t.cur = None then
      match Queue.take_opt t.queue with
      | None -> ()
      | Some f ->
        t.cur <- Some f;
        (* The offered-frame S line was recorded at arrival; serving it
           from the queue is not a second transfer. *)
        dispatch_mac t ~sender:id_env ~sig_id:id_frame_sig ~signal:sig_frame
          ~args:
            [
              ("seq", Efsm.Action.V_int f.f_seq);
              ("frags", Efsm.Action.V_int f.f_frags);
            ]
          ~words:100 ~tag:f.f_seq ~record:false
  and attempt t () =
    if t.alive then begin
      let now = Sim.Engine.now_ns engine in
      t.tx_attempts <- t.tx_attempts + 1;
      Obs.Metrics.inc m_attempts;
      if !chan_slot <> now then begin
        chan_slot := now;
        chan_txs := []
      end;
      (match !chan_txs with
      | [] -> ignore (Sim.Engine.schedule_ns engine ~delay:0 resolve)
      | _ :: _ -> ());
      chan_txs := t :: !chan_txs
    end
  and resolve () =
    let now = Sim.Engine.now_ns engine in
    let txs = List.rev !chan_txs in
    chan_txs := [];
    chan_slot := -1;
    let outcome_at = now + slot in
    let sched t verdict =
      let epoch = t.epoch in
      ignore
        (Sim.Engine.schedule_at_ns engine ~time:outcome_at (fun () ->
             outcome t epoch verdict))
    in
    match txs with
    | [] -> ()
    | [ t ] ->
      incr slots_used;
      let verdict =
        if t.burst_until > now then begin
          record_fault ~time:now "chan_burst_hit" t.name "-";
          `Fail
        end
        else
          match injector with
          | None -> `Air
          | Some inj -> (
            match
              Fault.Injector.chan_burst_start inj ~now:(Int64.of_int now)
                ~terminal:t.id
            with
            | Some burst_ns ->
              t.burst_until <- now + burst_ns;
              record_fault ~time:now "chan_burst" t.name
                (string_of_int burst_ns);
              `Fail
            | None ->
              if
                Fault.Injector.chan_loss inj ~now:(Int64.of_int now)
                  ~terminal:t.id
              then begin
                record_fault ~time:now "chan_loss" t.name "-";
                `Fail
              end
              else `Air)
      in
      sched t verdict
    | _ :: _ :: _ ->
      incr slots_used;
      incr collisions;
      record_fault ~time:now "chan_collision" "chan"
        (string_of_int (List.length txs));
      Obs.Metrics.inc m_collisions;
      List.iter
        (fun t ->
          t.collided <- t.collided + 1;
          sched t `Fail)
        txs
  and outcome t epoch verdict =
    (* End of the airtime: deliver to the destination and ack the
       sender, or fail the attempt.  A sender that departed in between
       voided its epoch; its MAC (if still departed) discards the
       outcome — a D line — and a rejoined MAC must not see a stale
       verdict for a flushed frame. *)
    let fail () =
      dispatch_mac t ~sender:id_chan ~sig_id:id_txfail ~signal:sig_txfail
        ~args:[] ~words:2 ~tag:t.att_seq ~record:true
    in
    if t.epoch <> epoch then begin
      if not t.alive then fail ()
    end
    else
      match verdict with
      | `Fail -> fail ()
      | `Air -> (
        match t.cur with
        | Some f when f.f_seq = t.att_seq ->
          let dst = terminals.(f.f_dst) in
          if not dst.alive then
            (* No receiver, no ack: the sender discovers the departure
               by timeout and backoff, like any other loss. *)
            fail ()
          else begin
            let last = if t.att_frag = f.f_frags - 1 then 1 else 0 in
            incr frags_through;
            Obs.Metrics.inc m_frags;
            dispatch_mac dst ~sender:id_chan ~sig_id:id_rx ~signal:sig_rx
              ~args:
                [
                  ("seq", Efsm.Action.V_int f.f_seq);
                  ("frag", Efsm.Action.V_int t.att_frag);
                  ("last", Efsm.Action.V_int last);
                ]
              ~words:16 ~tag:f.f_seq ~record:true;
            dispatch_mac t ~sender:id_chan ~sig_id:id_txok ~signal:sig_txok
              ~args:[] ~words:2 ~tag:f.f_seq ~record:true
          end
        | _ -> fail ())
  in
  apply_effect_fwd := apply_effect;
  (* ---- workload ---------------------------------------------------- *)
  let gap_hint t =
    match t.profile with
    | Workload.Cbr { period_ns; _ } -> period_ns
    | Workload.Bursty { mean_gap_ns; _ } -> 2 * mean_gap_ns
    | Workload.Video { frame_period_ns; _ } -> frame_period_ns
  in
  let next_gap t =
    match t.profile with
    | Workload.Cbr { period_ns; _ } -> period_ns
    | Workload.Bursty { mean_gap_ns; burst; _ } ->
      if t.burst_left > 0 then begin
        t.burst_left <- t.burst_left - 1;
        slot
      end
      else begin
        t.burst_left <- max 0 (burst - 1);
        1 + Prng.int t.arrivals (2 * mean_gap_ns)
      end
    | Workload.Video { frame_period_ns; _ } -> frame_period_ns
  in
  let next_frags t =
    match t.profile with
    | Workload.Cbr { frags; _ } | Workload.Bursty { frags; _ } -> max 1 frags
    | Workload.Video { gop; i_frags; p_frags; _ } ->
      let idx = t.vframe in
      t.vframe <- t.vframe + 1;
      max 1 (if idx mod gop = 0 then i_frags else p_frags)
  in
  let next_seq = ref 0 in
  let rec arrival t () =
    let now = Sim.Engine.now_ns engine in
    let f =
      {
        f_seq = !next_seq;
        f_src = t.id;
        f_dst = (t.id + 1) mod n;
        f_frags = next_frags t;
        f_born = now;
        f_status = Unresolved;
      }
    in
    incr next_seq;
    add_frame f;
    t.offered <- t.offered + 1;
    Obs.Metrics.inc m_offered;
    Sim.Trace.record_signal trace ~time:now ~sender:id_env
      ~receiver:t.name_id ~signal:id_frame_sig ~words:100 ~tag:f.f_seq;
    if not t.alive then begin
      (* The user keeps offering; the departed MAC discards (D line)
         and the frame is accounted as cleanly flushed. *)
      dispatch_mac t ~sender:id_env ~sig_id:id_frame_sig ~signal:sig_frame
        ~args:
          [
            ("seq", Efsm.Action.V_int f.f_seq);
            ("frags", Efsm.Action.V_int f.f_frags);
          ]
        ~words:100 ~tag:f.f_seq ~record:false;
      f.f_status <- Flushed;
      t.flushed <- t.flushed + 1;
      Obs.Metrics.inc m_flushed
    end
    else begin
      Queue.add f t.queue;
      start_next t
    end;
    ignore (Sim.Engine.schedule_ns engine ~delay:(next_gap t) (arrival t))
  in
  (* ---- churn ------------------------------------------------------- *)
  let flush (t : terminal) =
    let drop f =
      f.f_status <- Flushed;
      t.flushed <- t.flushed + 1;
      Obs.Metrics.inc m_flushed
    in
    (match t.cur with Some f -> drop f | None -> ());
    t.cur <- None;
    Queue.iter drop t.queue;
    Queue.clear t.queue
  in
  let leave ~kind t () =
    if t.alive then begin
      let now = Sim.Engine.now_ns engine in
      t.alive <- false;
      t.epoch <- t.epoch + 1;
      Sim.Engine.cancel t.pending_tx;
      t.pending_tx <- Sim.Engine.never;
      record_fault ~time:now kind t.name "-";
      incr leaves;
      (match injector with
      | Some inj when String.equal kind "term_crash" ->
        let stats = Fault.Injector.stats inj in
        stats.Fault.Stats.term_crashes <- stats.Fault.Stats.term_crashes + 1
      | _ -> ());
      flush t;
      dispatch_mac t ~sender:id_env ~sig_id:id_leave_sig ~signal:sig_leave
        ~args:[] ~words:1 ~tag:(-1) ~record:true
    end
  in
  let rejoin t () =
    if not t.alive then begin
      let now = Sim.Engine.now_ns engine in
      t.alive <- true;
      t.burst_until <- -1;
      record_fault ~time:now "term_join" t.name "-";
      incr joins;
      dispatch_mac t ~sender:id_env ~sig_id:id_join_sig ~signal:sig_join
        ~args:[] ~words:1 ~tag:(-1) ~record:true
    end
  in
  (* ---- schedule the world ------------------------------------------ *)
  Array.iter
    (fun t ->
      let first = 1 + Prng.int t.arrivals (max 1 (gap_hint t)) in
      ignore (Sim.Engine.schedule_ns engine ~delay:first (arrival t)))
    terminals;
  List.iter
    (fun ev ->
      let t = terminals.(ev.terminal) in
      match ev.action with
      | Leave ->
        ignore
          (Sim.Engine.schedule_at_ns engine ~time:ev.at_ns
             (leave ~kind:"term_leave" t))
      | Rejoin ->
        ignore (Sim.Engine.schedule_at_ns engine ~time:ev.at_ns (rejoin t)))
    config.churn;
  (match injector with
  | None -> ()
  | Some inj ->
    List.iter
      (fun (term, at_ns) ->
        if term < n then
          let t = terminals.(term) in
          ignore
            (Sim.Engine.schedule_at_ns engine ~time:(Int64.to_int at_ns)
               (leave ~kind:"term_crash" t)))
      (Fault.Injector.term_crashes inj ~terminals:n));
  let events =
    Sim.Engine.run ~until:(Int64.of_int config.duration_ns) engine
  in
  (* ---- gather ------------------------------------------------------ *)
  let classes =
    List.sort_uniq String.compare
      (Array.to_list (Array.map (fun t -> t.class_name) terminals))
  in
  let lat_snaps =
    Array.map (fun (t : terminal) -> Obs.Histogram.snapshot t.latency) terminals
  in
  let retry_snaps =
    Array.map (fun t -> Obs.Histogram.snapshot t.retry_dist) terminals
  in
  let latency, retry_snapshot =
    aggregate ~jobs:config.jobs ~classes
      ~class_of:(fun idx -> terminals.(idx).class_name)
      lat_snaps retry_snaps
  in
  (* Surface the per-class percentiles through the metrics registry. *)
  List.iter
    (fun (cls, snap) ->
      Obs.Histogram.absorb
        (Obs.Metrics.hdr metrics ("wlan.latency_ns." ^ cls))
        snap)
    latency;
  Obs.Histogram.absorb
    (Obs.Metrics.hdr metrics "wlan.retry_attempt")
    retry_snapshot;
  let sum f = Array.fold_left (fun acc t -> acc + f t) 0 terminals in
  let offered = sum (fun t -> t.offered)
  and delivered = sum (fun t -> t.delivered)
  and abandoned = sum (fun t -> t.abandoned)
  and flushed = sum (fun t -> t.flushed) in
  let per_terminal =
    Array.map
      (fun t ->
        {
          ts_id = t.id;
          ts_class = t.class_name;
          ts_alive = t.alive;
          ts_offered = t.offered;
          ts_delivered = t.delivered;
          ts_abandoned = t.abandoned;
          ts_flushed = t.flushed;
          ts_attempts = t.tx_attempts;
          ts_collisions = t.collided;
          ts_retries = t.retried;
          ts_mac_tx_frames = exec_var t.exec "tx_frames";
          ts_mac_rx_frames = exec_var t.exec "rx_frames";
          ts_mac_rx_frags = exec_var t.exec "rx_frags";
        })
      terminals
  in
  {
    r_config = config;
    trace;
    events;
    offered;
    delivered;
    abandoned;
    flushed;
    unresolved = offered - delivered - abandoned - flushed;
    attempts = sum (fun t -> t.tx_attempts);
    slots_used = !slots_used;
    collisions = !collisions;
    retries = sum (fun t -> t.retried);
    frags_delivered = !frags_through;
    leaves = !leaves;
    joins = !joins;
    latency;
    retry_snapshot;
    per_terminal;
    fault_stats = Option.map Fault.Injector.stats injector;
  }

(* ---- rendering ----------------------------------------------------- *)

let pct part whole =
  if whole = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole

let engine_name = function
  | Codegen.Runtime.Reference -> "reference"
  | Codegen.Runtime.Compiled -> "compiled"

let backend_name = function
  | Sim.Trace.Arena -> "arena"
  | Sim.Trace.List -> "list"

let render r =
  let buf = Buffer.create 4096 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  let c = r.r_config in
  line "TUTWLAN fleet report";
  line "====================";
  (* Engine and trace backend are deliberately absent: the rendered
     report is byte-identical across all of them, and the CI golden
     diff relies on that. *)
  line "terminals %d  duration %.3f s  slot %d us  seed %d" c.terminals
    (float_of_int c.duration_ns /. 1e9)
    (c.slot_ns / 1000) c.seed;
  line "mac: max_retries %d  cw %d..%d slots" c.max_retries c.cw_min c.cw_max;
  line "";
  line
    "frames   offered %d  delivered %d (%.1f%%)  abandoned %d  flushed %d  \
     unresolved %d"
    r.offered r.delivered (pct r.delivered r.offered) r.abandoned r.flushed
    r.unresolved;
  line
    "channel  attempts %d  busy slots %d  collisions %d (%.1f%% of busy \
     slots)  retries %d  fragments through %d"
    r.attempts r.slots_used r.collisions
    (pct r.collisions r.slots_used)
    r.retries r.frags_delivered;
  line
    "fleet    throughput %.1f frames/s  %.1f fragments/s  churn: %d leaves, \
     %d joins"
    (if c.duration_ns = 0 then 0.0
     else float_of_int r.delivered *. 1e9 /. float_of_int c.duration_ns)
    (if c.duration_ns = 0 then 0.0
     else float_of_int r.frags_delivered *. 1e9 /. float_of_int c.duration_ns)
    r.leaves r.joins;
  (match r.fault_stats with
  | None -> ()
  | Some s ->
    line
      "faults   channel losses %d  interference bursts %d  terminal crashes \
       %d"
      s.Fault.Stats.chan_losses s.Fault.Stats.chan_bursts
      s.Fault.Stats.term_crashes);
  line "";
  line
    "latency by class (us)   count      mean       p50       p95       p99  \
     \     max";
  List.iter
    (fun (cls, snap) ->
      if snap.Obs.Histogram.s_count = 0 then line "  %-20s %7d" cls 0
      else
        line "  %-20s %7d %9.1f %9d %9d %9d %9d" cls
          snap.Obs.Histogram.s_count
          (Obs.Histogram.mean snap /. 1e3)
          (Obs.Histogram.quantile snap 50.0 / 1000)
          (Obs.Histogram.quantile snap 95.0 / 1000)
          (Obs.Histogram.quantile snap 99.0 / 1000)
          (snap.Obs.Histogram.s_max / 1000))
    r.latency;
  line "";
  (if r.retry_snapshot.Obs.Histogram.s_count = 0 then line "retries: none"
   else
     line "retries: %d total  attempt# p50 %d  p95 %d  max %d"
       r.retry_snapshot.Obs.Histogram.s_count
       (Obs.Histogram.quantile r.retry_snapshot 50.0)
       (Obs.Histogram.quantile r.retry_snapshot 95.0)
       r.retry_snapshot.Obs.Histogram.s_max);
  line "";
  line
    "terminal  class   alive  offered  delivrd  abandnd  flushed  attempts  \
     collis  retries  mac_tx  mac_rx  rx_frags";
  Array.iter
    (fun ts ->
      line "  t%03d    %-7s %-5s %8d %8d %8d %8d %9d %7d %8d %7d %7d %9d"
        ts.ts_id ts.ts_class
        (if ts.ts_alive then "yes" else "no")
        ts.ts_offered ts.ts_delivered ts.ts_abandoned ts.ts_flushed
        ts.ts_attempts ts.ts_collisions ts.ts_retries ts.ts_mac_tx_frames
        ts.ts_mac_rx_frames ts.ts_mac_rx_frags)
    r.per_terminal;
  Buffer.contents buf

let render_json r =
  let c = r.r_config in
  Obs.Json.Obj
    [
      ( "config",
        Obs.Json.Obj
          [
            ("terminals", Obs.Json.Int c.terminals);
            ("duration_ns", Obs.Json.Int c.duration_ns);
            ("slot_ns", Obs.Json.Int c.slot_ns);
            ("seed", Obs.Json.Int c.seed);
            ("max_retries", Obs.Json.Int c.max_retries);
            ("cw_min", Obs.Json.Int c.cw_min);
            ("cw_max", Obs.Json.Int c.cw_max);
            ("engine", Obs.Json.Str (engine_name c.engine));
            ("trace_backend", Obs.Json.Str (backend_name c.trace_backend));
          ] );
      ("events", Obs.Json.Int r.events);
      ("offered", Obs.Json.Int r.offered);
      ("delivered", Obs.Json.Int r.delivered);
      ("abandoned", Obs.Json.Int r.abandoned);
      ("flushed", Obs.Json.Int r.flushed);
      ("unresolved", Obs.Json.Int r.unresolved);
      ("attempts", Obs.Json.Int r.attempts);
      ("busy_slots", Obs.Json.Int r.slots_used);
      ("collisions", Obs.Json.Int r.collisions);
      ("retries", Obs.Json.Int r.retries);
      ("frags_delivered", Obs.Json.Int r.frags_delivered);
      ("leaves", Obs.Json.Int r.leaves);
      ("joins", Obs.Json.Int r.joins);
      ( "latency_ns",
        Obs.Json.Obj
          (List.map
             (fun (cls, snap) -> (cls, Obs.Histogram.to_json snap))
             r.latency) );
      ("retry_attempts", Obs.Histogram.to_json r.retry_snapshot);
      ( "per_terminal",
        Obs.Json.List
          (Array.to_list
             (Array.map
                (fun ts ->
                  Obs.Json.Obj
                    [
                      ("id", Obs.Json.Int ts.ts_id);
                      ("class", Obs.Json.Str ts.ts_class);
                      ("alive", Obs.Json.Bool ts.ts_alive);
                      ("offered", Obs.Json.Int ts.ts_offered);
                      ("delivered", Obs.Json.Int ts.ts_delivered);
                      ("abandoned", Obs.Json.Int ts.ts_abandoned);
                      ("flushed", Obs.Json.Int ts.ts_flushed);
                      ("attempts", Obs.Json.Int ts.ts_attempts);
                      ("collisions", Obs.Json.Int ts.ts_collisions);
                      ("retries", Obs.Json.Int ts.ts_retries);
                      ("mac_tx_frames", Obs.Json.Int ts.ts_mac_tx_frames);
                      ("mac_rx_frames", Obs.Json.Int ts.ts_mac_rx_frames);
                      ("mac_rx_frags", Obs.Json.Int ts.ts_mac_rx_frags);
                    ])
                r.per_terminal)) );
    ]
