(** Signal vocabulary of the TUTMAC protocol model.

    Names are exported as constants; {!all} is the declaration list added
    to the UML model.  Payload sizes drive the HIBI transfer model (an
    MSDU is a 400-byte service data unit; PDUs are 64-byte fragments). *)

val msdu_req : string  (* user -> MAC data request *)
val msdu_ind : string  (* MAC -> user data indication *)
val msdu_to_dp : string  (* user interface -> data processing *)
val msdu_to_ui : string  (* data processing -> user interface *)
val crc_req : string
val crc_resp : string
val pdu_req : string  (* data processing -> channel access (tx queue) *)
val pdu_conf : string  (* channel access -> data processing (tx admission ack) *)
val pdu_ind : string  (* channel access -> data processing (rx path) *)
val phy_tx : string
val phy_rx : string
val rch_config : string  (* management -> channel access *)
val rch_status : string  (* channel access -> management *)
val mng_to_rmng : string
val rmng_report : string
val rmng_meas_req : string
val phy_meas_ind : string
val mng_user_req : string
val mng_user_ind : string

val all : Uml.Signal.t list
