(** Fleet-scale TUTWLAN: N terminals on one slotted shared medium.

    Generalises the single-terminal scenario to a contention network:
    per-terminal MAC EFSMs (fragmentation, binary-exponential-backoff
    retry, graceful departure) execute under either EFSM engine; the
    channel model corrupts overlapping transmissions (collision) and
    applies the fault plan's channel injectors ([chan_loss],
    [chan_burst], [term_crash]) per terminal.  Strict [(time, seq)]
    scheduling plus per-terminal PRNG streams keep any [(plan, seed)]
    configuration bit-identical across engines, trace backends,
    repeated runs and aggregation job counts. *)

type churn_action = Leave | Rejoin

type churn_event = { terminal : int; at_ns : int; action : churn_action }

type config = {
  terminals : int;
  duration_ns : int;
  slot_ns : int;  (** airtime of one transmission opportunity *)
  seed : int;  (** arrival jitter + backoff streams *)
  mix : Workload.profile list;  (** terminals round-robin over it *)
  max_retries : int;  (** per-fragment attempts before abandoning *)
  cw_min : int;  (** initial contention window, in slots *)
  cw_max : int;  (** window cap under repeated failure *)
  churn : churn_event list;  (** scripted graceful departures *)
  faults : Fault.Plan.t;  (** channel injectors + terminal crashes *)
  fault_seed : int;
  jobs : int;  (** domains for metric aggregation (result-invariant) *)
  engine : Codegen.Runtime.engine_kind;
  trace_backend : Sim.Trace.backend;
}

val default : config
(** 8 terminals, 2 s, 50 us slots, default mix, BEB 2..64 with 6
    retries, no churn, no faults, compiled engine, arena trace. *)

val churn_of_string : string -> (churn_event list, string) result
(** Parse a CLI churn script: comma-separated
    [TERMINAL@LEAVE_MS[-REJOIN_MS]] items, e.g. ["4@200-800,5@300"]. *)

val mac_machine :
  max_retries:int -> cw_min:int -> cw_max:int -> Efsm.Machine.t
(** The per-terminal MAC EFSM (exposed for tests and model checking):
    states [idle]/[busy]/[departed]; signals [WlFrame]/[WlTxOk]/
    [WlTxFail]/[WlRx]/[WlLeave]/[WlJoin] in, effects [WlTxReq]/
    [WlBackoff]/[WlDrop]/[WlDone]/[WlDeliver] out. *)

(** Per-terminal outcome counters; the [ts_mac_*] fields are read back
    from the MAC EFSM's own variables, so any engine divergence shows
    up directly in the rendered report. *)
type terminal_stats = {
  ts_id : int;
  ts_class : string;
  ts_alive : bool;
  ts_offered : int;
  ts_delivered : int;
  ts_abandoned : int;
  ts_flushed : int;
  ts_attempts : int;
  ts_collisions : int;
  ts_retries : int;
  ts_mac_tx_frames : int;
  ts_mac_rx_frames : int;
  ts_mac_rx_frags : int;
}

type result = {
  r_config : config;
  trace : Sim.Trace.t;
  events : int;
  offered : int;  (** frames handed to MAC queues *)
  delivered : int;  (** last fragment received at the destination *)
  abandoned : int;  (** retry budget exhausted, dropped cleanly *)
  flushed : int;  (** discarded by departure (queue flush / offered
                      while departed) *)
  unresolved : int;  (** still queued or in flight at the horizon *)
  attempts : int;
  slots_used : int;  (** slots with at least one transmission *)
  collisions : int;
  retries : int;
  frags_delivered : int;
  leaves : int;
  joins : int;
  latency : (string * Obs.Histogram.snapshot) list;
      (** end-to-end frame latency per traffic class, sorted by class *)
  retry_snapshot : Obs.Histogram.snapshot;
      (** distribution of retry attempt numbers *)
  per_terminal : terminal_stats array;
  fault_stats : Fault.Stats.t option;  (** when a plan was active *)
}

val run : ?obs:Obs.Scope.t -> config -> result
(** Simulate the fleet.  Raises [Invalid_argument] on inconsistent
    configuration (no terminals, churn out of range, [cw_max < cw_min],
    ...).  Per-class latency and the retry distribution are also
    absorbed into [obs]'s registry as [wlan.latency_ns.<class>] /
    [wlan.retry_attempt] HDR instruments. *)

val render : result -> string
(** Deterministic text report (the CI golden). *)

val render_json : result -> Obs.Json.t
