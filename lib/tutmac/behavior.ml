type costs = {
  slot_processing : int;
  tx_processing : int;
  rx_processing : int;
  pdu_enqueue : int;
  config_processing : int;
  msdu_receive : int;
  msdu_deliver : int;
  frag_setup : int;
  frag_per_pdu : int;
  defrag_per_pdu : int;
  defrag_release : int;
  crc_block : int;
  mng_beacon : int;
  mng_status : int;
  mng_report : int;
  mng_user : int;
  rmng_measure : int;
  rmng_result : int;
  rmng_command : int;
}

let default_costs =
  {
    slot_processing = 2000;
    tx_processing = 1500;
    rx_processing = 1200;
    pdu_enqueue = 500;
    config_processing = 800;
    msdu_receive = 300;
    msdu_deliver = 200;
    frag_setup = 800;
    frag_per_pdu = 300;
    defrag_per_pdu = 400;
    defrag_release = 300;
    crc_block = 120;
    mng_beacon = 4800;
    mng_status = 500;
    mng_report = 600;
    mng_user = 800;
    rmng_measure = 2500;
    rmng_result = 700;
    rmng_command = 400;
  }

let pdus_per_msdu = 4
let last_pdu_index = pdus_per_msdu - 1

open Efsm.Action

let on s = Efsm.Machine.On_signal s
let after n = Efsm.Machine.After n
let tr = Efsm.Machine.transition

(* MsduReceiver: forwards user data requests to data processing. *)
let msdu_receiver costs =
  Efsm.Machine.make ~name:"MsduReceiver" ~states:[ "idle" ] ~initial:"idle"
    ~variables:[ ("accepted", V_int 0) ]
    [
      tr ~src:"idle" ~dst:"idle" (on Signals.msdu_req)
        ~actions:
          [
            compute (i costs.msdu_receive);
            assign "accepted" (v "accepted" + i 1);
            send ~port:"dp_out" Signals.msdu_to_dp ~args:[ p "seq" ];
          ];
    ]

(* MsduDeliverer: hands reassembled MSDUs back to the user. *)
let msdu_deliverer costs =
  Efsm.Machine.make ~name:"MsduDeliverer" ~states:[ "idle" ] ~initial:"idle"
    ~variables:[ ("delivered", V_int 0) ]
    [
      tr ~src:"idle" ~dst:"idle" (on Signals.msdu_to_ui)
        ~actions:
          [
            compute (i costs.msdu_deliver);
            assign "delivered" (v "delivered" + i 1);
            send ~port:"user_out" Signals.msdu_ind ~args:[ p "seq" ];
          ];
    ]

(* Fragmenter: splits one MSDU into [pdus_per_msdu] PDUs; each PDU gets a
   CRC from the CRC calculator before entering the channel-access tx
   queue.  The request/response handshake keeps at most one CRC
   outstanding, like the original blocking hardware-accelerator call.
   Channel-access admission is a window of one: each PduReq must be
   confirmed by the MAC's PduConf before the next fragment is prepared,
   which bounds the MAC's PduReq backlog to a single message no matter
   how the scheduler interleaves the producers (the env-budget-2
   model-checking run overflowed the unconfirmed design). *)
let fragmenter costs =
  let last = last_pdu_index in
  Efsm.Machine.make ~name:"Fragmenter"
    ~states:[ "idle"; "fragging"; "confwait" ]
    ~initial:"idle"
    ~variables:[ ("cur_seq", V_int 0); ("frag_i", V_int 0) ]
    [
      tr ~src:"idle" ~dst:"fragging" (on Signals.msdu_to_dp)
        ~actions:
          [
            assign "cur_seq" (p "seq");
            assign "frag_i" (i 0);
            compute (i costs.frag_setup);
            send ~port:"crc_port" Signals.crc_req ~args:[ p "seq"; i 0 ];
          ];
      tr ~src:"fragging" ~dst:"confwait" (on Signals.crc_resp)
        ~actions:
          [
            compute (i costs.frag_per_pdu);
            send ~port:"rch_out" Signals.pdu_req
              ~args:[ v "cur_seq"; v "frag_i" ];
          ];
      tr ~src:"confwait" ~dst:"fragging" (on Signals.pdu_conf)
        ~guard:(v "frag_i" < i last)
        ~actions:
          [
            assign "frag_i" (v "frag_i" + i 1);
            send ~port:"crc_port" Signals.crc_req
              ~args:[ v "cur_seq"; v "frag_i" ];
          ];
      tr ~src:"confwait" ~dst:"idle" (on Signals.pdu_conf)
        ~guard:(v "frag_i" >= i last)
        ~actions:[];
    ]

(* CrcCalculator: the offloadable protocol function.  The cycle cost is a
   reference-platform cost; the accelerator's PerfFactor shrinks it. *)
let crc_calculator costs =
  Efsm.Machine.make ~name:"CrcCalculator" ~states:[ "idle" ] ~initial:"idle"
    ~variables:[ ("blocks", V_int 0) ]
    [
      tr ~src:"idle" ~dst:"idle" (on Signals.crc_req)
        ~actions:
          [
            compute (i costs.crc_block);
            assign "blocks" (v "blocks" + i 1);
            send ~port:"crc_port" Signals.crc_resp ~args:[ p "seq"; p "frag" ];
          ];
    ]

(* Defragmenter: counts PDUs and releases an MSDU per full window. *)
let defragmenter costs =
  Efsm.Machine.make ~name:"Defragmenter" ~states:[ "idle" ] ~initial:"idle"
    ~variables:[ ("pdus", V_int 0); ("released", V_int 0) ]
    [
      tr ~src:"idle" ~dst:"idle" (on Signals.pdu_ind)
        ~actions:
          [
            compute (i costs.defrag_per_pdu);
            assign "pdus" (v "pdus" + i 1);
            If
              ( v "pdus" mod i pdus_per_msdu = i 0,
                [
                  compute (i costs.defrag_release);
                  assign "released" (v "released" + i 1);
                  send ~port:"ui_out" Signals.msdu_to_ui ~args:[ p "seq" ];
                ],
                [] );
          ];
    ]

(* RadioChannelAccess: the TDMA MAC core.  A slot timer fires every
   [slot_period_ns]; slot upkeep runs whether or not there is traffic,
   which is why this process dominates the profile (Table 4a). *)
let radio_channel_access ~slot_period_ns costs =
  Efsm.Machine.make ~name:"RadioChannelAccess"
    ~states:[ "wait_slot" ]
    ~initial:"wait_slot"
    ~variables:
      [
        ("txq", V_int 0);
        ("slot", V_int 0);
        ("last_seq", V_int 0);
        ("last_frag", V_int 0);
      ]
    [
      tr ~src:"wait_slot" ~dst:"wait_slot" (after slot_period_ns)
        ~actions:
          [
            compute (i costs.slot_processing);
            assign "slot" (v "slot" + i 1);
            If
              ( v "txq" > i 0,
                [
                  compute (i costs.tx_processing);
                  send ~port:"phy_port" Signals.phy_tx
                    ~args:[ v "last_seq"; v "last_frag" ];
                  assign "txq" (v "txq" - i 1);
                ],
                [] );
          ];
      tr ~src:"wait_slot" ~dst:"wait_slot" (on Signals.pdu_req)
        ~actions:
          [
            compute (i costs.pdu_enqueue);
            assign "txq" (v "txq" + i 1);
            assign "last_seq" (p "seq");
            assign "last_frag" (p "frag");
            send ~port:"dp_in" Signals.pdu_conf ~args:[ p "seq"; p "frag" ];
          ];
      tr ~src:"wait_slot" ~dst:"wait_slot" (on Signals.phy_rx)
        ~actions:
          [
            compute (i costs.rx_processing);
            send ~port:"dp_out" Signals.pdu_ind ~args:[ p "seq"; p "frag" ];
          ];
      tr ~src:"wait_slot" ~dst:"wait_slot" (on Signals.rch_config)
        ~actions:
          [
            compute (i costs.config_processing);
            send ~port:"mng_port" Signals.rch_status ~args:[ p "code" ];
          ];
    ]

(* Management: periodic beacon/connection upkeep plus reactions to
   channel-access status, radio reports and user management requests.
   Config pushes to channel access are credit-based: at most one
   RChConfig is outstanding until its RChStatus comes back, so a stalled
   MAC never accumulates configuration backlog. *)
let management ~beacon_period_ns costs =
  Efsm.Machine.make ~name:"Management" ~states:[ "run" ] ~initial:"run"
    ~variables:[ ("beacons", V_int 0); ("cfg_pending", V_int 0) ]
    [
      tr ~src:"run" ~dst:"run" (after beacon_period_ns)
        ~actions:
          [
            compute (i costs.mng_beacon);
            assign "beacons" (v "beacons" + i 1);
            If
              ( v "cfg_pending" = i 0,
                [
                  assign "cfg_pending" (i 1);
                  send ~port:"rch_port" Signals.rch_config ~args:[ v "beacons" ];
                ],
                [] );
            If
              ( v "beacons" mod i 2 = i 0,
                [ send ~port:"rmng_port" Signals.mng_to_rmng ~args:[ v "beacons" ] ],
                [] );
          ];
      tr ~src:"run" ~dst:"run" (on Signals.rch_status)
        ~actions:[ compute (i costs.mng_status); assign "cfg_pending" (i 0) ];
      tr ~src:"run" ~dst:"run" (on Signals.rmng_report)
        ~actions:[ compute (i costs.mng_report) ];
      tr ~src:"run" ~dst:"run" (on Signals.mng_user_req)
        ~actions:
          [
            compute (i costs.mng_user);
            send ~port:"mng_user" Signals.mng_user_ind ~args:[ p "code" ];
          ];
    ]

(* Hierarchical variant of Management: Unassociated -> Associated
   (composite, initial Operational); the composite level owns the
   reactive handlers, the Operational substate owns the beacon timer. *)
let management_hierarchical ~beacon_period_ns costs =
  let hsm =
    {
      Efsm.Hsm.name = "ManagementH";
      Efsm.Hsm.states =
        [
          Efsm.Hsm.simple "Unassociated";
          Efsm.Hsm.composite ~name:"Associated" ~initial:"Operational"
            [ Efsm.Hsm.simple "Operational" ];
        ];
      Efsm.Hsm.initial = "Unassociated";
      Efsm.Hsm.variables = [ ("beacons", V_int 0); ("cfg_pending", V_int 0) ];
      Efsm.Hsm.transitions =
        [
          tr ~src:"Unassociated" ~dst:"Associated" (after beacon_period_ns)
            ~actions:
              [
                compute (i costs.mng_beacon);
                assign "cfg_pending" (i 1);
                send ~port:"rch_port" Signals.rch_config ~args:[ i 0 ];
              ];
          (* Composite-level handlers, inherited by Operational. *)
          tr ~src:"Associated" ~dst:"Associated" (on Signals.rch_status)
            ~actions:[ compute (i costs.mng_status); assign "cfg_pending" (i 0) ];
          tr ~src:"Associated" ~dst:"Associated" (on Signals.rmng_report)
            ~actions:[ compute (i costs.mng_report) ];
          tr ~src:"Associated" ~dst:"Associated" (on Signals.mng_user_req)
            ~actions:
              [
                compute (i costs.mng_user);
                send ~port:"mng_user" Signals.mng_user_ind ~args:[ p "code" ];
              ];
          (* The periodic beacon lives on the substate. *)
          tr ~src:"Operational" ~dst:"Operational" (after beacon_period_ns)
            ~actions:
              [
                compute (i costs.mng_beacon);
                assign "beacons" (v "beacons" + i 1);
                If
                  ( v "cfg_pending" = i 0,
                    [
                      assign "cfg_pending" (i 1);
                      send ~port:"rch_port" Signals.rch_config
                        ~args:[ v "beacons" ];
                    ],
                    [] );
                If
                  ( v "beacons" mod i 2 = i 0,
                    [
                      send ~port:"rmng_port" Signals.mng_to_rmng
                        ~args:[ v "beacons" ];
                    ],
                    [] );
              ];
        ];
    }
  in
  match Efsm.Hsm.flatten hsm with
  | Ok machine -> machine
  | Error problems ->
    invalid_arg
      (Printf.sprintf "Behavior.management_hierarchical: %s"
         (String.concat "; " problems))

(* RadioManagement: periodic channel-quality measurement via the PHY. *)
let radio_management ~meas_period_ns costs =
  Efsm.Machine.make ~name:"RadioManagement" ~states:[ "run" ] ~initial:"run"
    ~variables:[ ("measurements", V_int 0) ]
    [
      tr ~src:"run" ~dst:"run" (after meas_period_ns)
        ~actions:
          [
            compute (i costs.rmng_measure);
            assign "measurements" (v "measurements" + i 1);
            send ~port:"phy_port" Signals.rmng_meas_req ~args:[ v "measurements" ];
          ];
      tr ~src:"run" ~dst:"run" (on Signals.phy_meas_ind)
        ~actions:
          [
            compute (i costs.rmng_result);
            send ~port:"mng_port" Signals.rmng_report ~args:[ p "quality" ];
          ];
      tr ~src:"run" ~dst:"run" (on Signals.mng_to_rmng)
        ~actions:[ compute (i costs.rmng_command) ];
    ]
