type t = { mutable state : int64 }

let create seed =
  (* Avoid the all-zero fixed point of xorshift. *)
  let s = Int64.of_int seed in
  { state = (if s = 0L then 0x9E3779B97F4A7C15L else s) }

(* splitmix64 finaliser (Steele/Lea/Flood): a strong bijective mixer, so
   nearby (seed, stream) pairs land on unrelated xorshift states. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let split_seed ~seed ~stream =
  if stream < 0 then invalid_arg "Prng.split: negative stream index";
  let z =
    Int64.add (Int64.of_int seed)
      (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (stream + 1)))
  in
  Int64.to_int (mix64 (mix64 z))

let split ~seed ~stream = create (split_seed ~seed ~stream)

let next t =
  (* xorshift64-star (Vigna). *)
  let x = t.state in
  let x = Int64.logxor x (Int64.shift_right_logical x 12) in
  let x = Int64.logxor x (Int64.shift_left x 25) in
  let x = Int64.logxor x (Int64.shift_right_logical x 27) in
  t.state <- x;
  Int64.mul x 0x2545F4914F6CDD1DL

let int t n =
  if n <= 0 then invalid_arg "Prng.int: non-positive bound";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int n))

let float t =
  Int64.to_float (Int64.shift_right_logical (next t) 11) /. 9007199254740992.0

let bool t ~p = float t < p

let pick t items =
  match items with
  | [] -> invalid_arg "Prng.pick: empty list"
  | items -> List.nth items (int t (List.length items))

let shuffle t items =
  let tagged = List.map (fun x -> (next t, x)) items in
  List.map snd (List.sort compare tagged)
