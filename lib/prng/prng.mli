(** Deterministic pseudo-random numbers (xorshift64-star).

    Shared by design-space exploration ({!Dse.Rng} re-exports this
    module unchanged) and the fault-injection subsystem: anything that
    must replay bit-identically from a seed threads one of these
    generators instead of touching the global [Random] state. *)

type t

val create : int -> t
(** Seeded generator; the same seed always yields the same sequence. *)

val split : seed:int -> stream:int -> t
(** [split ~seed ~stream] derives an independent generator for the given
    stream index (two rounds of the splitmix64 finaliser over seed and
    index).  Deterministic: the same (seed, stream) pair always yields
    the same generator, and distinct stream indices yield generators with
    unrelated sequences.  Raises [Invalid_argument] when [stream < 0]. *)

val split_seed : seed:int -> stream:int -> int
(** The integer seed behind {!split}, for APIs that take a seed rather
    than a generator: [split ~seed ~stream = create (split_seed ~seed
    ~stream)]. *)

val int : t -> int -> int
(** [int t n] draws uniformly from [0, n).  Raises [Invalid_argument]
    when [n <= 0]. *)

val float : t -> float
(** Uniform draw from [0, 1). *)

val bool : t -> p:float -> bool
(** Bernoulli draw: [true] with probability [p] (clamped to [0, 1]).
    Always consumes exactly one draw, so decision schedules stay aligned
    whatever the rate. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a list -> 'a list
