type t = {
  plan : Plan.t;
  specs : Plan.spec array;
  flip_seed : int;
      (* base seed for per-frame bit-flip rngs (salted at call time) *)
  streams : Prng.t array;  (* streams.(i) drives plan spec i *)
  chan_seed : int;
      (* base seed for per-(spec, terminal) channel streams *)
  chan_streams : (int * int, Prng.t) Hashtbl.t;
  max_flips : int;  (* max over corrupt specs; 0 when none *)
  stats : Stats.t;
}

(* Reserved stream indices — far above any plausible spec count so they
   can never collide with streams.(i). *)
let flip_stream = 0x7F_F11F
let chan_stream = 0x7E_C4A0

let create ~plan ~seed =
  let specs = Array.of_list plan.Plan.specs in
  {
    plan;
    specs;
    flip_seed = Prng.split_seed ~seed ~stream:flip_stream;
    streams = Array.init (Array.length specs) (fun i -> Prng.split ~seed ~stream:i);
    chan_seed = Prng.split_seed ~seed ~stream:chan_stream;
    chan_streams = Hashtbl.create 64;
    max_flips =
      Array.fold_left
        (fun acc spec ->
          match spec with
          | Plan.Hibi_corrupt { max_flips; _ } -> max acc max_flips
          | _ -> acc)
        0 specs;
    stats = Stats.create ();
  }

(* The stream for (spec i, terminal) is derived purely from the seed, so
   lazy creation order cannot matter; draws within a stream happen in
   simulated-event order by a single-threaded simulation. *)
let chan_rng t ~spec ~terminal =
  match Hashtbl.find_opt t.chan_streams (spec, terminal) with
  | Some rng -> rng
  | None ->
    let rng =
      Prng.split
        ~seed:(Prng.split_seed ~seed:t.chan_seed ~stream:spec)
        ~stream:terminal
    in
    Hashtbl.add t.chan_streams (spec, terminal) rng;
    rng

let active t = not (Plan.is_empty t.plan)
let plan t = t.plan
let recovery t = t.plan.Plan.recovery
let stats t = t.stats

let in_window ~now (w : Plan.window) =
  now >= w.from_ns
  && match w.until_ns with None -> true | Some u -> now < u

let matches pattern name = pattern = "*" || pattern = name

type action = Pass | Drop | Corrupt | Stall of int64

let hibi_action t ~now ~segment =
  let n = Array.length t.streams in
  let rec go i =
    if i >= n then Pass
    else
      let rng = t.streams.(i) in
      match t.specs.(i) with
      | Plan.Hibi_drop { segment = pat; rate; window }
        when matches pat segment && in_window ~now window ->
        if Prng.bool rng ~p:rate then begin
          t.stats.Stats.hibi_drops <- t.stats.Stats.hibi_drops + 1;
          Drop
        end
        else go (i + 1)
      | Plan.Hibi_corrupt { segment = pat; rate; window; _ }
        when matches pat segment && in_window ~now window ->
        if Prng.bool rng ~p:rate then begin
          t.stats.Stats.hibi_corrupts <- t.stats.Stats.hibi_corrupts + 1;
          Corrupt
        end
        else go (i + 1)
      | Plan.Hibi_stall { segment = pat; rate; max_stall_ns; window }
        when matches pat segment && in_window ~now window ->
        if Prng.bool rng ~p:rate then begin
          t.stats.Stats.hibi_stalls <- t.stats.Stats.hibi_stalls + 1;
          Stall (Int64.of_int (1 + Prng.int rng max_stall_ns))
        end
        else go (i + 1)
      | _ -> go (i + 1)
  in
  go 0

let corrupt_frame t ~salt frame =
  if t.max_flips = 0 || String.length frame = 0 then frame
  else begin
    let rng = Prng.split ~seed:t.flip_seed ~stream:salt in
    let bytes = Bytes.of_string frame in
    let nbits = 8 * Bytes.length bytes in
    let flips = 1 + Prng.int rng (max 1 t.max_flips) in
    for _ = 1 to flips do
      let bit = Prng.int rng nbits in
      let byte = bit / 8 and off = bit mod 8 in
      Bytes.set bytes byte
        (Char.chr (Char.code (Bytes.get bytes byte) lxor (1 lsl off)))
    done;
    Bytes.to_string bytes
  end

type fate = Deliver | Lose | Duplicate

let signal_fate t ~now ~process =
  let n = Array.length t.streams in
  let rec go i =
    if i >= n then Deliver
    else
      let rng = t.streams.(i) in
      match t.specs.(i) with
      | Plan.Signal_loss { process = pat; rate; window }
        when matches pat process && in_window ~now window ->
        if Prng.bool rng ~p:rate then begin
          t.stats.Stats.signal_losses <- t.stats.Stats.signal_losses + 1;
          Lose
        end
        else go (i + 1)
      | Plan.Signal_dup { process = pat; rate; window }
        when matches pat process && in_window ~now window ->
        if Prng.bool rng ~p:rate then begin
          t.stats.Stats.signal_dups <- t.stats.Stats.signal_dups + 1;
          Duplicate
        end
        else go (i + 1)
      | _ -> go (i + 1)
  in
  go 0

let chan_loss t ~now ~terminal =
  let n = Array.length t.specs in
  let rec go i =
    if i >= n then false
    else
      match t.specs.(i) with
      | Plan.Chan_loss { terminals; rate; window }
        when Selector.matches terminals terminal && in_window ~now window ->
        if Prng.bool (chan_rng t ~spec:i ~terminal) ~p:rate then begin
          t.stats.Stats.chan_losses <- t.stats.Stats.chan_losses + 1;
          true
        end
        else go (i + 1)
      | _ -> go (i + 1)
  in
  go 0

let chan_burst_start t ~now ~terminal =
  let n = Array.length t.specs in
  let rec go i =
    if i >= n then None
    else
      match t.specs.(i) with
      | Plan.Chan_burst { terminals; rate; max_burst_ns; window }
        when Selector.matches terminals terminal && in_window ~now window ->
        let rng = chan_rng t ~spec:i ~terminal in
        if Prng.bool rng ~p:rate then begin
          t.stats.Stats.chan_bursts <- t.stats.Stats.chan_bursts + 1;
          Some (1 + Prng.int rng max_burst_ns)
        end
        else go (i + 1)
      | _ -> go (i + 1)
  in
  go 0

let term_crashes t ~terminals:count =
  List.concat_map
    (function
      | Plan.Term_crash { terminals; at_ns } ->
        List.filter_map
          (fun term ->
            if Selector.matches terminals term then Some (term, at_ns)
            else None)
          (List.init count Fun.id)
      | _ -> [])
    t.plan.Plan.specs

let pe_crashes t =
  List.filter_map
    (function Plan.Pe_crash { pe; at_ns } -> Some (pe, at_ns) | _ -> None)
    t.plan.Plan.specs

let pe_slowdowns t =
  List.filter_map
    (function
      | Plan.Pe_slowdown { pe; factor; from_ns; until_ns } ->
        Some (pe, factor, from_ns, until_ns)
      | _ -> None)
    t.plan.Plan.specs
