type window = { from_ns : int64; until_ns : int64 option }

let always = { from_ns = 0L; until_ns = None }

type spec =
  | Hibi_drop of { segment : string; rate : float; window : window }
  | Hibi_corrupt of {
      segment : string;
      rate : float;
      max_flips : int;
      window : window;
    }
  | Hibi_stall of {
      segment : string;
      rate : float;
      max_stall_ns : int;
      window : window;
    }
  | Pe_crash of { pe : string; at_ns : int64 }
  | Pe_slowdown of {
      pe : string;
      factor : float;
      from_ns : int64;
      until_ns : int64;
    }
  | Signal_loss of { process : string; rate : float; window : window }
  | Signal_dup of { process : string; rate : float; window : window }
  | Chan_loss of { terminals : Selector.t; rate : float; window : window }
  | Chan_burst of {
      terminals : Selector.t;
      rate : float;
      max_burst_ns : int;
      window : window;
    }
  | Term_crash of { terminals : Selector.t; at_ns : int64 }

type recovery = {
  ack_timeout_ns : int64;
  max_retries : int;
  watchdog_period_ns : int64;
  remap : bool;
}

let default_recovery =
  {
    ack_timeout_ns = 2_000_000L;
    max_retries = 5;
    watchdog_period_ns = 10_000_000L;
    remap = true;
  }

type t = { specs : spec list; recovery : recovery }

let empty = { specs = []; recovery = default_recovery }
let is_empty t = t.specs = []

let spec_kind = function
  | Hibi_drop _ -> "hibi_drop"
  | Hibi_corrupt _ -> "hibi_corrupt"
  | Hibi_stall _ -> "hibi_stall"
  | Pe_crash _ -> "pe_crash"
  | Pe_slowdown _ -> "pe_slowdown"
  | Signal_loss _ -> "signal_loss"
  | Signal_dup _ -> "signal_dup"
  | Chan_loss _ -> "chan_loss"
  | Chan_burst _ -> "chan_burst"
  | Term_crash _ -> "term_crash"

let catalog =
  [
    ( "hibi_drop",
      "drop a message hop on a HIBI segment (fields: segment, rate, \
       [from_ns], [until_ns])" );
    ( "hibi_corrupt",
      "flip 1..max_flips bits of the frame crossing a HIBI segment \
       (fields: segment, rate, [max_flips], [from_ns], [until_ns])" );
    ( "hibi_stall",
      "delay a hop by 1..max_stall_ns extra nanoseconds (fields: segment, \
       rate, max_stall_ns, [from_ns], [until_ns])" );
    ("pe_crash", "fail-stop a processing element (fields: pe, at_ns)");
    ( "pe_slowdown",
      "scale job durations on a PE inside a window (fields: pe, factor, \
       from_ns, until_ns)" );
    ( "signal_loss",
      "lose a local same-PE signal delivery (fields: process, rate, \
       [from_ns], [until_ns])" );
    ( "signal_dup",
      "deliver a local same-PE signal twice (fields: process, rate, \
       [from_ns], [until_ns])" );
    ( "chan_loss",
      "lose a WLAN transmission by a matching terminal (fields: terminals \
       selector, rate, [from_ns], [until_ns])" );
    ( "chan_burst",
      "start a burst of interference of 1..max_burst_ns near a matching \
       terminal; its transmissions corrupt while the burst lasts (fields: \
       terminals selector, rate, max_burst_ns, [from_ns], [until_ns])" );
    ( "term_crash",
      "fail-stop matching WLAN terminals at the given instant (fields: \
       terminals selector, at_ns)" );
  ]

(* ---- decoding -------------------------------------------------------- *)

exception Shape of string

let shape ctx msg = raise (Shape (Printf.sprintf "%s: %s" ctx msg))

let field_int64 ?default ctx json name =
  match Obs.Json.member name json with
  | Some (Obs.Json.Int n) -> Int64.of_int n
  | Some _ ->
    shape ctx (Printf.sprintf "field %S must be an integer" name)
  | None -> (
    match default with
    | Some d -> d
    | None -> shape ctx (Printf.sprintf "missing field %S" name))

let field_int ?default ctx json name =
  match Obs.Json.member name json with
  | Some (Obs.Json.Int n) -> n
  | Some _ -> shape ctx (Printf.sprintf "field %S must be an integer" name)
  | None -> (
    match default with
    | Some d -> d
    | None -> shape ctx (Printf.sprintf "missing field %S" name))

let field_string ?default ctx json name =
  match Obs.Json.member name json with
  | Some (Obs.Json.Str s) -> s
  | Some _ -> shape ctx (Printf.sprintf "field %S must be a string" name)
  | None -> (
    match default with
    | Some d -> d
    | None -> shape ctx (Printf.sprintf "missing field %S" name))

let field_bool ?default ctx json name =
  match Obs.Json.member name json with
  | Some (Obs.Json.Bool b) -> b
  | Some _ -> shape ctx (Printf.sprintf "field %S must be a boolean" name)
  | None -> (
    match default with
    | Some d -> d
    | None -> shape ctx (Printf.sprintf "missing field %S" name))

let field_float ?default ctx json name =
  match Obs.Json.member name json with
  | Some (Obs.Json.Float f) -> f
  | Some (Obs.Json.Int n) -> float_of_int n
  | Some _ -> shape ctx (Printf.sprintf "field %S must be a number" name)
  | None -> (
    match default with
    | Some d -> d
    | None -> shape ctx (Printf.sprintf "missing field %S" name))

let field_rate ctx json name =
  let r = field_float ctx json name in
  if r < 0.0 || r > 1.0 then
    shape ctx (Printf.sprintf "field %S must be a number in [0,1]" name);
  r

let field_window ctx json =
  let from_ns = field_int64 ~default:0L ctx json "from_ns" in
  let until_ns =
    match field_int64 ~default:(-1L) ctx json "until_ns" with
    | -1L -> None
    | n when n < 0L -> shape ctx "field \"until_ns\" must be >= 0 or -1"
    | n -> Some n
  in
  (match until_ns with
  | Some u when u < from_ns ->
    shape ctx "window is empty (until_ns < from_ns)"
  | Some _ | None -> ());
  { from_ns; until_ns }

let known_fields =
  [
    "kind"; "segment"; "pe"; "process"; "rate"; "max_flips"; "max_stall_ns";
    "at_ns"; "factor"; "from_ns"; "until_ns"; "terminals"; "max_burst_ns";
  ]

let field_terminals ctx json =
  let text = field_string ctx json "terminals" in
  match Selector.parse text with
  | Ok sel -> sel
  | Error e -> shape ctx (Printf.sprintf "field \"terminals\": %s" e)

let decode_spec i json =
  let kind =
    match json with
    | Obs.Json.Obj fields ->
      List.iter
        (fun (name, _) ->
          if not (List.mem name known_fields) then
            shape
              (Printf.sprintf "faults[%d]" i)
              (Printf.sprintf "unknown field %S" name))
        fields;
      field_string (Printf.sprintf "faults[%d]" i) json "kind"
    | _ -> shape (Printf.sprintf "faults[%d]" i) "must be an object"
  in
  let ctx = Printf.sprintf "faults[%d] (%s)" i kind in
  match kind with
  | "hibi_drop" ->
    Hibi_drop
      {
        segment = field_string ctx json "segment";
        rate = field_rate ctx json "rate";
        window = field_window ctx json;
      }
  | "hibi_corrupt" ->
    let max_flips = field_int ~default:3 ctx json "max_flips" in
    if max_flips < 1 then shape ctx "field \"max_flips\" must be >= 1";
    Hibi_corrupt
      {
        segment = field_string ctx json "segment";
        rate = field_rate ctx json "rate";
        max_flips;
        window = field_window ctx json;
      }
  | "hibi_stall" ->
    let max_stall_ns = field_int ctx json "max_stall_ns" in
    if max_stall_ns < 1 then shape ctx "field \"max_stall_ns\" must be >= 1";
    Hibi_stall
      {
        segment = field_string ctx json "segment";
        rate = field_rate ctx json "rate";
        max_stall_ns;
        window = field_window ctx json;
      }
  | "pe_crash" ->
    let at_ns = field_int64 ctx json "at_ns" in
    if at_ns < 0L then shape ctx "field \"at_ns\" must be >= 0";
    Pe_crash { pe = field_string ctx json "pe"; at_ns }
  | "pe_slowdown" ->
    let factor = field_float ctx json "factor" in
    if factor < 1.0 then shape ctx "field \"factor\" must be >= 1.0";
    let from_ns = field_int64 ctx json "from_ns" in
    let until_ns = field_int64 ctx json "until_ns" in
    if from_ns < 0L || until_ns <= from_ns then
      shape ctx "window is empty (need 0 <= from_ns < until_ns)";
    Pe_slowdown { pe = field_string ctx json "pe"; factor; from_ns; until_ns }
  | "signal_loss" ->
    Signal_loss
      {
        process = field_string ctx json "process";
        rate = field_rate ctx json "rate";
        window = field_window ctx json;
      }
  | "signal_dup" ->
    Signal_dup
      {
        process = field_string ctx json "process";
        rate = field_rate ctx json "rate";
        window = field_window ctx json;
      }
  | "chan_loss" ->
    Chan_loss
      {
        terminals = field_terminals ctx json;
        rate = field_rate ctx json "rate";
        window = field_window ctx json;
      }
  | "chan_burst" ->
    let max_burst_ns = field_int ctx json "max_burst_ns" in
    if max_burst_ns < 1 then shape ctx "field \"max_burst_ns\" must be >= 1";
    Chan_burst
      {
        terminals = field_terminals ctx json;
        rate = field_rate ctx json "rate";
        max_burst_ns;
        window = field_window ctx json;
      }
  | "term_crash" ->
    let at_ns = field_int64 ctx json "at_ns" in
    if at_ns < 0L then shape ctx "field \"at_ns\" must be >= 0";
    Term_crash { terminals = field_terminals ctx json; at_ns }
  | other ->
    shape
      (Printf.sprintf "faults[%d]" i)
      (Printf.sprintf "unknown kind %S (see tutflow faults --list)" other)

let decode_recovery json =
  let ctx = "recovery" in
  let ack_timeout_ns =
    field_int64 ~default:default_recovery.ack_timeout_ns ctx json
      "ack_timeout_ns"
  in
  if ack_timeout_ns <= 0L then shape ctx "field \"ack_timeout_ns\" must be > 0";
  let max_retries =
    field_int ~default:default_recovery.max_retries ctx json "max_retries"
  in
  if max_retries < 0 then shape ctx "field \"max_retries\" must be >= 0";
  let watchdog_period_ns =
    field_int64 ~default:default_recovery.watchdog_period_ns ctx json
      "watchdog_period_ns"
  in
  if watchdog_period_ns < 0L then
    shape ctx "field \"watchdog_period_ns\" must be >= 0";
  let remap = field_bool ~default:default_recovery.remap ctx json "remap" in
  { ack_timeout_ns; max_retries; watchdog_period_ns; remap }

(* The JSON reader reports byte offsets; humans edit lines. *)
let line_col_of_offset text offset =
  let offset = min (max 0 offset) (String.length text) in
  let line = ref 1 and col = ref 1 in
  String.iteri
    (fun i c ->
      if i < offset then
        if c = '\n' then begin
          incr line;
          col := 1
        end
        else incr col)
    text;
  (!line, !col)

let relocate_offset text msg =
  (* "... at offset N" -> "line L, column C: ..." *)
  let marker = " at offset " in
  let len = String.length msg and mlen = String.length marker in
  let rec find i =
    if i + mlen > len then None
    else if String.sub msg i mlen = marker then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i -> (
    match int_of_string_opt (String.sub msg (i + mlen) (len - i - mlen)) with
    | Some offset ->
      let line, col = line_col_of_offset text offset in
      Printf.sprintf "line %d, column %d: %s" line col (String.sub msg 0 i)
    | None -> msg)
  | None -> msg

let of_json_string text =
  match Obs.Json.parse text with
  | Error e -> Error (relocate_offset text e)
  | Ok json -> (
    try
      match json with
      | Obs.Json.Obj fields ->
        List.iter
          (fun (name, _) ->
            if name <> "faults" && name <> "recovery" then
              raise
                (Shape
                   (Printf.sprintf
                      "plan: unknown field %S (expected \"faults\" and \
                       optionally \"recovery\")"
                      name)))
          fields;
        let specs =
          match Obs.Json.member "faults" json with
          | None | Some (Obs.Json.List []) -> []
          | Some (Obs.Json.List items) -> List.mapi decode_spec items
          | Some _ -> raise (Shape "plan: field \"faults\" must be a list")
        in
        let recovery =
          match Obs.Json.member "recovery" json with
          | None -> default_recovery
          | Some (Obs.Json.Obj _ as r) -> decode_recovery r
          | Some _ -> raise (Shape "plan: field \"recovery\" must be an object")
        in
        Ok { specs; recovery }
      | _ -> Error "plan: top level must be an object"
    with Shape msg -> Error msg)

let of_file path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    let contents =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    Result.map_error (fun e -> Printf.sprintf "%s: %s" path e)
      (of_json_string contents)

(* ---- encoding -------------------------------------------------------- *)

let window_fields { from_ns; until_ns } =
  [ ("from_ns", Obs.Json.Int (Int64.to_int from_ns)) ]
  @
  match until_ns with
  | None -> []
  | Some u -> [ ("until_ns", Obs.Json.Int (Int64.to_int u)) ]

let spec_to_json spec =
  let kind = ("kind", Obs.Json.Str (spec_kind spec)) in
  Obs.Json.Obj
    (match spec with
    | Hibi_drop { segment; rate; window } ->
      (kind :: [ ("segment", Obs.Json.Str segment); ("rate", Obs.Json.Float rate) ])
      @ window_fields window
    | Hibi_corrupt { segment; rate; max_flips; window } ->
      (kind
      :: [
           ("segment", Obs.Json.Str segment);
           ("rate", Obs.Json.Float rate);
           ("max_flips", Obs.Json.Int max_flips);
         ])
      @ window_fields window
    | Hibi_stall { segment; rate; max_stall_ns; window } ->
      (kind
      :: [
           ("segment", Obs.Json.Str segment);
           ("rate", Obs.Json.Float rate);
           ("max_stall_ns", Obs.Json.Int max_stall_ns);
         ])
      @ window_fields window
    | Pe_crash { pe; at_ns } ->
      [ kind; ("pe", Obs.Json.Str pe); ("at_ns", Obs.Json.Int (Int64.to_int at_ns)) ]
    | Pe_slowdown { pe; factor; from_ns; until_ns } ->
      [
        kind;
        ("pe", Obs.Json.Str pe);
        ("factor", Obs.Json.Float factor);
        ("from_ns", Obs.Json.Int (Int64.to_int from_ns));
        ("until_ns", Obs.Json.Int (Int64.to_int until_ns));
      ]
    | Signal_loss { process; rate; window } ->
      (kind
      :: [ ("process", Obs.Json.Str process); ("rate", Obs.Json.Float rate) ])
      @ window_fields window
    | Signal_dup { process; rate; window } ->
      (kind
      :: [ ("process", Obs.Json.Str process); ("rate", Obs.Json.Float rate) ])
      @ window_fields window
    | Chan_loss { terminals; rate; window } ->
      (kind
      :: [
           ("terminals", Obs.Json.Str (Selector.to_string terminals));
           ("rate", Obs.Json.Float rate);
         ])
      @ window_fields window
    | Chan_burst { terminals; rate; max_burst_ns; window } ->
      (kind
      :: [
           ("terminals", Obs.Json.Str (Selector.to_string terminals));
           ("rate", Obs.Json.Float rate);
           ("max_burst_ns", Obs.Json.Int max_burst_ns);
         ])
      @ window_fields window
    | Term_crash { terminals; at_ns } ->
      [
        kind;
        ("terminals", Obs.Json.Str (Selector.to_string terminals));
        ("at_ns", Obs.Json.Int (Int64.to_int at_ns));
      ])

let to_json t =
  Obs.Json.Obj
    [
      ("faults", Obs.Json.List (List.map spec_to_json t.specs));
      ( "recovery",
        Obs.Json.Obj
          [
            ("ack_timeout_ns", Obs.Json.Int (Int64.to_int t.recovery.ack_timeout_ns));
            ("max_retries", Obs.Json.Int t.recovery.max_retries);
            ( "watchdog_period_ns",
              Obs.Json.Int (Int64.to_int t.recovery.watchdog_period_ns) );
            ("remap", Obs.Json.Bool t.recovery.remap);
          ] );
    ]
