(** Terminal selectors for channel-fault specs.

    A selector names a set of terminal indices: ["*"] (every terminal),
    a single index (["7"]), an inclusive range (["3-12"]), or a
    comma-separated list of those (["0,5,9-11"]).  The parsed form is
    what fault plans store, so {!to_string} round-trips through
    {!parse}. *)

type t

val all : t
(** The ["*"] selector. *)

val parse : string -> (t, string) result
(** Errors carry the 1-based column of the offending character
    (["column 4: expected ',' or '-', got 'x'"]); {!Plan} prefixes them
    with the fault index and field so a plan-file mistake points at the
    exact spot. *)

val matches : t -> int -> bool

val max_terminal : t -> int option
(** Largest index the selector can match; [None] for ["*"].  Lets a
    scenario warn when a plan names terminals it does not have. *)

val to_string : t -> string
(** Canonical form; [parse (to_string t)] yields [t]. *)
