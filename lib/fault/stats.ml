type t = {
  mutable hibi_drops : int;
  mutable hibi_corrupts : int;
  mutable hibi_stalls : int;
  mutable pe_crashes : int;
  mutable pe_slowdowns : int;
  mutable signal_losses : int;
  mutable signal_dups : int;
  mutable chan_losses : int;
  mutable chan_bursts : int;
  mutable term_crashes : int;
  mutable crc_rejects : int;
  mutable crc_residual : int;
  mutable watchdog_detections : int;
  mutable retransmits : int;
  mutable arq_acked : int;
  mutable arq_giveups : int;
  mutable arq_duplicates : int;
  mutable remapped_processes : int;
  mutable recovery_latencies_ns : int64 list;
}

let create () =
  {
    hibi_drops = 0;
    hibi_corrupts = 0;
    hibi_stalls = 0;
    pe_crashes = 0;
    pe_slowdowns = 0;
    signal_losses = 0;
    signal_dups = 0;
    chan_losses = 0;
    chan_bursts = 0;
    term_crashes = 0;
    crc_rejects = 0;
    crc_residual = 0;
    watchdog_detections = 0;
    retransmits = 0;
    arq_acked = 0;
    arq_giveups = 0;
    arq_duplicates = 0;
    remapped_processes = 0;
    recovery_latencies_ns = [];
  }

let injected t =
  t.hibi_drops + t.hibi_corrupts + t.hibi_stalls + t.pe_crashes
  + t.pe_slowdowns + t.signal_losses + t.signal_dups + t.chan_losses
  + t.chan_bursts + t.term_crashes

let detected t = t.crc_rejects + t.watchdog_detections
let recovered t = t.arq_acked + t.remapped_processes

let latency_percentiles t =
  match t.recovery_latencies_ns with
  | [] -> None
  | ls ->
    let a = Array.of_list ls in
    Array.sort Int64.compare a;
    let n = Array.length a in
    let at p =
      let i = (p * (n - 1)) / 100 in
      a.(i)
    in
    Some (at 50, at 95, a.(n - 1))
