(** Seeded interpreter of a {!Plan}.

    Each spec in the plan owns its own splitmix-derived PRNG stream
    (stream [i] for spec [i]), so adding or removing one spec never
    perturbs the schedule of the others, and the whole injection
    schedule replays bit-identically from [(plan, seed)].

    Decision order is deterministic: injection points are consulted in
    simulated-event order by a single-threaded simulation, and corrupt
    bit positions are drawn from a rng derived from a per-frame [salt]
    rather than a shared stream, so they cannot interleave across
    in-flight messages. *)

type t

val create : plan:Plan.t -> seed:int -> t

val active : t -> bool
(** [false] iff the plan is empty — callers skip every hook, keeping
    fault-free runs byte-identical. *)

val plan : t -> Plan.t
val recovery : t -> Plan.recovery
val stats : t -> Stats.t
(** Shared mutable counters; the runtime's recovery machinery writes the
    detection/recovery side into the same record. *)

(** Verdict for one message hop on a HIBI segment. *)
type action =
  | Pass
  | Drop
  | Corrupt  (** Deliver, but flip bits (see {!corrupt_frame}). *)
  | Stall of int64  (** Deliver after this many extra nanoseconds. *)

val hibi_action : t -> now:int64 -> segment:string -> action
(** First matching spec (plan order) that fires wins.  Counts the
    injection in {!Stats}. *)

val corrupt_frame : t -> salt:int -> string -> string
(** Flip [1 + rng salt (max max_flips over corrupt specs)] bits of the
    frame.  The rng is derived from [salt] alone (plus the injector
    seed), so the flipped positions are independent of evaluation
    order; use a salt unique per (message, attempt). *)

type fate = Deliver | Lose | Duplicate

val signal_fate : t -> now:int64 -> process:string -> fate
(** Verdict for one local (same-PE) signal delivery. *)

val chan_loss : t -> now:int64 -> terminal:int -> bool
(** Verdict for one WLAN transmission opportunity by [terminal]: [true]
    when a matching [Chan_loss] spec fires.  Draws come from a stream
    derived from [(spec index, terminal)], so each terminal's loss
    schedule is independent of fleet size and of the other terminals'
    traffic. *)

val chan_burst_start : t -> now:int64 -> terminal:int -> int option
(** Consult matching [Chan_burst] specs for one opportunity; [Some
    duration_ns] starts a burst of that length near the terminal.  The
    caller owns the burst clock (and must not consult again until the
    burst ends, so the draw schedule is reproducible from the plan). *)

val term_crashes : t -> terminals:int -> (int * int64) list
(** [(terminal, at_ns)] expanded over terminals [0 .. terminals-1] for
    every [Term_crash] spec, in plan order. *)

val pe_crashes : t -> (string * int64) list
(** [(pe, at_ns)] for every [Pe_crash] spec, for the runtime to
    schedule. *)

val pe_slowdowns : t -> (string * float * int64 * int64) list
(** [(pe, factor, from_ns, until_ns)] for every [Pe_slowdown] spec. *)
