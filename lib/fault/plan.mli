(** Declarative fault plans.

    A plan is a list of {e fault specs} — what to break, where, how
    often, inside which simulated-time window — plus the recovery
    budgets the runtime's fault-tolerance machinery (ARQ, watchdog,
    degradation re-mapping) runs under.  Plans are data: they parse
    from JSON ({!of_json_string}/{!of_file}), print back
    ({!to_json}), and are interpreted by {!Injector} against a seed so
    that every run replays bit-identically.

    Rates are per-opportunity probabilities in [0, 1]: a [rate] of 0.05
    on a HIBI drop spec means each message hop on a matching segment is
    dropped with probability 0.05.  Targets accept ["*"] as a wildcard.
    Windows bound a spec to [from_ns <= now < until_ns]; [until_ns]
    omitted (or [-1] in JSON) means "until the end of the run". *)

type window = {
  from_ns : int64;
  until_ns : int64 option;  (** [None] = unbounded *)
}

val always : window

type spec =
  | Hibi_drop of { segment : string; rate : float; window : window }
      (** Message vanishes on the segment: the receiving wrapper never
          sees it (a lossy radio channel, a dropped bus grant). *)
  | Hibi_corrupt of {
      segment : string;
      rate : float;
      max_flips : int;
      window : window;
    }
      (** Payload bit-flips in transit; 1..[max_flips] bits of the frame
          are inverted.  CRC-32 framing at the runtime layer is what
          detects these. *)
  | Hibi_stall of {
      segment : string;
      rate : float;
      max_stall_ns : int;
      window : window;
    }
      (** Bounded extra forwarding latency of 1..[max_stall_ns] ns on
          the hop (arbitration livelock, wrapper back-pressure). *)
  | Pe_crash of { pe : string; at_ns : int64 }
      (** Fail-stop at the given instant: the PE's scheduler executes
          nothing from then on. *)
  | Pe_slowdown of {
      pe : string;
      factor : float;
      from_ns : int64;
      until_ns : int64;
    }
      (** Transient slowdown window: job bursts dispatched inside it
          take [factor] times as long (thermal throttling, DVFS). *)
  | Signal_loss of { process : string; rate : float; window : window }
      (** Local (same-PE) signal delivery silently lost. *)
  | Signal_dup of { process : string; rate : float; window : window }
      (** Local signal delivered twice. *)
  | Chan_loss of { terminals : Selector.t; rate : float; window : window }
      (** WLAN channel: a transmission by a matching terminal is lost in
          the air (deep fade, hidden node).  Each matching terminal draws
          from its own PRNG stream, so adding a terminal to the selector
          never perturbs the others' loss schedules. *)
  | Chan_burst of {
      terminals : Selector.t;
      rate : float;
      max_burst_ns : int;
      window : window;
    }
      (** WLAN channel: burst interference near a matching terminal.
          Each opportunity starts a burst with probability [rate]; while
          a burst lasts (1..[max_burst_ns] ns, drawn per burst) every
          transmission by that terminal corrupts. *)
  | Term_crash of { terminals : Selector.t; at_ns : int64 }
      (** Fail-stop of matching WLAN terminals at the given instant —
          ungraceful churn: no departure notice, peers discover via
          timeout. *)

type recovery = {
  ack_timeout_ns : int64;
      (** First retransmission timeout; doubles per attempt. *)
  max_retries : int;  (** Retransmission attempts before giving up. *)
  watchdog_period_ns : int64;
      (** Liveness-check period; [0L] disables the watchdog. *)
  remap : bool;
      (** Re-map a dead PE's processes onto survivors on detection. *)
}

val default_recovery : recovery
(** 2 ms first timeout, 5 retries, 10 ms watchdog, remap on. *)

type t = { specs : spec list; recovery : recovery }

val empty : t
(** No specs, default recovery.  An empty plan injects nothing and the
    runtime keeps its exact fault-free behaviour (byte-identical traces
    and reports). *)

val is_empty : t -> bool

val spec_kind : spec -> string
(** The JSON [kind] tag, e.g. ["hibi_corrupt"]. *)

val catalog : (string * string) list
(** [(kind, description)] of every available injector, for
    [tutflow faults --list]. *)

val of_json_string : string -> (t, string) result
(** Parse a plan document.  Syntax errors report the 1-based line and
    column; shape errors name the offending fault index and field
    (["faults[2] (hibi_corrupt): field \"rate\" must be a number in
    [0,1]"]) — never a bare [Failure]. *)

val of_file : string -> (t, string) result
(** [of_json_string] over the file contents; the error is prefixed with
    the path. *)

val to_json : t -> Obs.Json.t
(** Round-trips through {!of_json_string}. *)
