type item = { lo : int; hi : int }
type t = All | Set of item list

let all = All

let parse text =
  let len = String.length text in
  let err pos msg =
    Error (Printf.sprintf "column %d: %s" (pos + 1) msg)
  in
  if text = "*" then Ok All
  else if len = 0 then err 0 "empty terminal selector"
  else begin
    (* items ::= item ("," item)*   item ::= INT | INT "-" INT *)
    let exception Bad of string in
    let bad pos msg =
      raise (Bad (Printf.sprintf "column %d: %s" (pos + 1) msg))
    in
    let pos = ref 0 in
    let peek () = if !pos < len then Some text.[!pos] else None in
    let number what =
      let start = !pos in
      while
        !pos < len && match text.[!pos] with '0' .. '9' -> true | _ -> false
      do
        incr pos
      done;
      if !pos = start then
        bad start
          (Printf.sprintf "expected %s, got %s" what
             (match peek () with
             | Some c -> Printf.sprintf "%C" c
             | None -> "end of input"));
      int_of_string (String.sub text start (!pos - start))
    in
    let item () =
      let start = !pos in
      let lo = number "a terminal number" in
      match peek () with
      | Some '-' ->
        incr pos;
        let hi = number "the end of the range" in
        if hi < lo then
          bad start (Printf.sprintf "range %d-%d is empty" lo hi);
        { lo; hi }
      | _ -> { lo; hi = lo }
    in
    match
      let first = item () in
      let rec more acc =
        match peek () with
        | None -> List.rev acc
        | Some ',' ->
          incr pos;
          more (item () :: acc)
        | Some c -> bad !pos (Printf.sprintf "expected ',' or '-', got %C" c)
      in
      more [ first ]
    with
    | items -> Ok (Set items)
    | exception Bad msg -> Error msg
  end

let matches t terminal =
  match t with
  | All -> true
  | Set items ->
    List.exists (fun { lo; hi } -> terminal >= lo && terminal <= hi) items

let max_terminal = function
  | All -> None
  | Set items ->
    Some (List.fold_left (fun acc { hi; _ } -> max acc hi) 0 items)

let to_string = function
  | All -> "*"
  | Set items ->
    String.concat ","
      (List.map
         (fun { lo; hi } ->
           if lo = hi then string_of_int lo else Printf.sprintf "%d-%d" lo hi)
         items)
