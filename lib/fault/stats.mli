(** Mutable counters for one faulted run: what was injected, what the
    runtime detected, and what it recovered.  A single record is shared
    by the {!Injector} (injection side) and the runtime's ARQ/watchdog
    machinery (detection/recovery side), then rendered into the
    profiler's fault section. *)

type t = {
  (* injected *)
  mutable hibi_drops : int;
  mutable hibi_corrupts : int;
  mutable hibi_stalls : int;
  mutable pe_crashes : int;
  mutable pe_slowdowns : int;
  mutable signal_losses : int;
  mutable signal_dups : int;
  mutable chan_losses : int;  (** WLAN transmissions lost in the air. *)
  mutable chan_bursts : int;  (** Interference bursts started. *)
  mutable term_crashes : int;  (** WLAN terminals fail-stopped. *)
  (* detected *)
  mutable crc_rejects : int;
      (** Corrupted frames caught by the CRC-32 check. *)
  mutable crc_residual : int;
      (** Corrupted frames the CRC failed to catch (delivered wrong). *)
  mutable watchdog_detections : int;
  (* recovered *)
  mutable retransmits : int;
  mutable arq_acked : int;
      (** Messages delivered intact after at least one retransmission —
          the ARQ recoveries. *)
  mutable arq_giveups : int;  (** Messages abandoned after max retries. *)
  mutable arq_duplicates : int;
      (** Redundant deliveries suppressed at the receiver. *)
  mutable remapped_processes : int;
  mutable recovery_latencies_ns : int64 list;
      (** Crash-to-detection (watchdog) latencies, most recent first. *)
}

val create : unit -> t

val injected : t -> int
(** Total injected events across every injector. *)

val detected : t -> int
(** CRC rejects + watchdog detections. *)

val recovered : t -> int
(** ARQ-recovered messages ([arq_acked]) plus remapped processes. *)

val latency_percentiles : t -> (int64 * int64 * int64) option
(** [(p50, p95, max)] over {!recovery_latencies_ns}, or [None] when no
    recovery latency was recorded. *)
