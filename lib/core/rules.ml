type severity = Lint.Diagnostic.severity = Error | Warning

type diagnostic = Lint.Diagnostic.t = {
  rule : string;
  severity : severity;
  element : Uml.Element.ref_ option;
  message : string;
}

let pp_diagnostic = Lint.Diagnostic.pp
let errors = Lint.Diagnostic.errors
let warnings = Lint.Diagnostic.warnings

let check (view : View.t) =
  let out = ref [] in
  let diag ?element rule severity fmt =
    Printf.ksprintf
      (fun message -> out := { rule; severity; element; message } :: !out)
      fmt
  in
  let profile = Stereotypes.profile in
  let model = view.View.model in
  let apps = view.View.apps in

  (* R01 / R08: single, passive top-level classes. *)
  let check_top rule stereotype classes =
    (match classes with
    | [] | [ _ ] -> ()
    | _ :: _ :: _ ->
      diag rule Error "more than one <<%s>> class: %s" stereotype
        (String.concat ", " classes));
    List.iter
      (fun name ->
        match Uml.Model.find_class model name with
        | Some cls when Uml.Classifier.is_active cls ->
          diag ~element:(Uml.Element.Class_ref name) rule Error
            "<<%s>> class %s must be passive (composite structure only)"
            stereotype name
        | Some _ | None -> ())
      classes
  in
  check_top "R01" Stereotypes.application view.View.application_classes;
  check_top "R08" Stereotypes.platform view.View.platform_classes;

  (* R02: ApplicationComponent classes are active. *)
  List.iter
    (fun ref_ ->
      match ref_ with
      | Uml.Element.Class_ref name -> (
        match Uml.Model.find_class model name with
        | Some cls when not (Uml.Classifier.is_active cls) ->
          diag ~element:ref_ "R02" Error
            "<<ApplicationComponent>> class %s has no behaviour" name
        | Some _ | None -> ())
      | _ -> ())
    (Profile.Apply.elements_with apps Stereotypes.application_component);

  let component_classes =
    List.filter_map
      (function Uml.Element.Class_ref c -> Some c | _ -> None)
      (Profile.Apply.elements_with apps Stereotypes.application_component)
  in

  (* R03: parts typed by components are stereotyped processes. *)
  List.iter
    (fun (owner, (part : Uml.Classifier.part)) ->
      if List.mem part.Uml.Classifier.class_name component_classes then begin
        let ref_ =
          Uml.Element.Part_ref
            { class_name = owner; part = part.Uml.Classifier.name }
        in
        if not (Profile.Apply.has apps ref_ Stereotypes.application_process)
        then
          diag ~element:ref_ "R03" Error
            "part %s is typed by component %s but lacks <<ApplicationProcess>>"
            part.Uml.Classifier.name part.Uml.Classifier.class_name
      end)
    (Uml.Model.all_parts model);

  (* R04: processes are typed by components. *)
  List.iter
    (fun (p : View.process) ->
      if not (List.mem p.View.component component_classes) then
        diag ~element:p.View.ref_ "R04" Error
          "<<ApplicationProcess>> part %s is typed by %s which is not an \
           <<ApplicationComponent>>"
          p.View.part p.View.component)
    view.View.processes;

  (* R05: grouping endpoints. *)
  List.iter
    (fun (g : View.grouping) ->
      if View.find_process view g.View.process = None then
        diag
          ~element:(Uml.Element.Dependency_ref g.View.dependency)
          "R05" Error "grouping client %s is not an <<ApplicationProcess>>"
          (Uml.Element.to_string g.View.process);
      if View.find_group view g.View.group = None then
        diag
          ~element:(Uml.Element.Dependency_ref g.View.dependency)
          "R05" Error "grouping supplier %s is not a <<ProcessGroup>>"
          (Uml.Element.to_string g.View.group))
    view.View.groupings;

  (* R06: group membership cardinality. *)
  List.iter
    (fun (p : View.process) ->
      let memberships =
        List.filter
          (fun (g : View.grouping) -> Uml.Element.equal g.View.process p.View.ref_)
          view.View.groupings
      in
      match memberships with
      | [] ->
        diag ~element:p.View.ref_ "R06" Warning
          "process %s belongs to no process group (cannot be mapped)"
          p.View.part
      | [ _ ] -> ()
      | _ :: _ :: _ ->
        diag ~element:p.View.ref_ "R06" Error
          "process %s belongs to %d process groups" p.View.part
          (List.length memberships))
    view.View.processes;

  (* R07: group/member ProcessType agreement. *)
  List.iter
    (fun (g : View.group) ->
      List.iter
        (fun (p : View.process) ->
          if p.View.process_type <> g.View.process_type then
            diag ~element:p.View.ref_ "R07" Error
              "process %s has ProcessType %s but its group %s declares %s"
              p.View.part
              (View.process_type_to_string p.View.process_type)
              g.View.part
              (View.process_type_to_string g.View.process_type))
        (View.members_of_group view g.View.ref_))
    view.View.groups;

  (* R09: PE instances typed by platform components. *)
  let platform_component_classes =
    List.filter_map
      (function Uml.Element.Class_ref c -> Some c | _ -> None)
      (Profile.Apply.elements_with apps Stereotypes.platform_component)
  in
  List.iter
    (fun (pe : View.pe_instance) ->
      if not (List.mem pe.View.component platform_component_classes) then
        diag ~element:pe.View.ref_ "R09" Error
          "<<PlatformComponentInstance>> %s is typed by %s which is not a \
           <<PlatformComponent>>"
          pe.View.part pe.View.component)
    view.View.pes;

  (* R10: unique PE IDs. *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (pe : View.pe_instance) ->
      match Hashtbl.find_opt seen pe.View.id with
      | Some other ->
        diag ~element:pe.View.ref_ "R10" Error
          "PE instance %s reuses ID %d already used by %s" pe.View.part
          pe.View.id other
      | None -> Hashtbl.add seen pe.View.id pe.View.part)
    view.View.pes;

  (* R11: wrapper endpoint shapes. *)
  List.iter
    (fun (w : View.wrapper) ->
      match w.View.pe_part, w.View.segment_parts with
      | Some _, [ _ ] | None, [ _; _ ] -> ()
      | _, _ ->
        diag ~element:w.View.ref_ "R11" Error
          "wrapper %s must join a PE instance to a segment, or two segments \
           (bridge)"
          w.View.connector)
    view.View.wrappers;

  (* R12: unique wrapper addresses. *)
  let seen_addr = Hashtbl.create 8 in
  List.iter
    (fun (w : View.wrapper) ->
      match Hashtbl.find_opt seen_addr w.View.address with
      | Some other ->
        diag ~element:w.View.ref_ "R12" Error
          "wrapper %s reuses address %d already used by %s" w.View.connector
          w.View.address other
      | None -> Hashtbl.add seen_addr w.View.address w.View.connector)
    view.View.wrappers;

  (* R13: mapping endpoints. *)
  List.iter
    (fun (m : View.mapping) ->
      if View.find_group view m.View.group = None then
        diag
          ~element:(Uml.Element.Dependency_ref m.View.dependency)
          "R13" Error "mapping client %s is not a <<ProcessGroup>>"
          (Uml.Element.to_string m.View.group);
      if View.find_pe view m.View.pe = None then
        diag
          ~element:(Uml.Element.Dependency_ref m.View.dependency)
          "R13" Error "mapping supplier %s is not a <<PlatformComponentInstance>>"
          (Uml.Element.to_string m.View.pe))
    view.View.mappings;

  (* R14: mapping cardinality per group. *)
  List.iter
    (fun (g : View.group) ->
      let targets =
        List.filter
          (fun (m : View.mapping) -> Uml.Element.equal m.View.group g.View.ref_)
          view.View.mappings
      in
      match targets with
      | [] ->
        diag ~element:g.View.ref_ "R14" Warning
          "process group %s is not mapped to any platform component instance"
          g.View.part
      | [ _ ] -> ()
      | _ :: _ :: _ ->
        diag ~element:g.View.ref_ "R14" Error
          "process group %s is mapped to %d platform component instances"
          g.View.part (List.length targets))
    view.View.groups;

  (* R15: hardware groups <-> hw accelerators. *)
  List.iter
    (fun (m : View.mapping) ->
      match View.find_group view m.View.group, View.find_pe view m.View.pe with
      | Some g, Some pe ->
        let group_hw = g.View.process_type = View.Pt_hardware in
        let pe_hw = pe.View.component_type = View.Ct_hw_accelerator in
        if group_hw && not pe_hw then
          diag
            ~element:(Uml.Element.Dependency_ref m.View.dependency)
            "R15" Error
            "hardware process group %s mapped to non-accelerator %s"
            g.View.part pe.View.part;
        if pe_hw && not group_hw then
          diag
            ~element:(Uml.Element.Dependency_ref m.View.dependency)
            "R15" Error
            "accelerator %s can only host hardware process groups, got %s"
            pe.View.part g.View.part
      | _, _ -> ())
    view.View.mappings;

  (* R16: PE connectivity. *)
  List.iter
    (fun (pe : View.pe_instance) ->
      if view.View.segments <> [] && View.segments_of_pe view pe.View.ref_ = []
      then
        diag ~element:pe.View.ref_ "R16" Warning
          "PE instance %s is not attached to any communication segment"
          pe.View.part)
    view.View.pes;

  (* R17: hard real-time co-location. *)
  List.iter
    (fun (pe : View.pe_instance) ->
      let hosted = View.processes_on_pe view pe.View.ref_ in
      let hard =
        List.filter (fun (p : View.process) -> p.View.real_time = View.Rt_hard) hosted
      in
      List.iter
        (fun (h : View.process) ->
          List.iter
            (fun (p : View.process) ->
              let same_group =
                match
                  ( View.group_of_process view h.View.ref_,
                    View.group_of_process view p.View.ref_ )
                with
                | Some a, Some b -> Uml.Element.equal a.View.ref_ b.View.ref_
                | _, _ -> false
              in
              if
                (not (Uml.Element.equal p.View.ref_ h.View.ref_))
                && (not same_group)
                && p.View.priority > h.View.priority
              then
                diag ~element:h.View.ref_ "R17" Warning
                  "hard real-time process %s shares PE %s with higher-priority \
                   process %s from another group"
                  h.View.part pe.View.part p.View.part)
            hosted)
        hard)
    view.View.pes;

  (* R18: memory budget per PE instance. *)
  List.iter
    (fun (pe : View.pe_instance) ->
      match pe.View.int_memory with
      | None -> ()
      | Some capacity ->
        let demand =
          List.fold_left
            (fun acc (p : View.process) ->
              acc
              + Option.value ~default:0 p.View.code_memory
              + Option.value ~default:0 p.View.data_memory)
            0
            (View.processes_on_pe view pe.View.ref_)
        in
        if demand > capacity then
          diag ~element:pe.View.ref_ "R18" Warning
            "processes mapped to %s need %d bytes but IntMemory is %d"
            pe.View.part demand capacity)
    view.View.pes;

  ignore profile;
  List.rev !out

let catalog =
  [
    ("R01", Error, "at most one <<Application>> class per model, and it is passive");
    ("R02", Error, "every <<ApplicationComponent>> class is active (has behaviour)");
    ("R03", Error, "parts typed by an <<ApplicationComponent>> carry <<ApplicationProcess>>");
    ("R04", Error, "every <<ApplicationProcess>> part is typed by an <<ApplicationComponent>>");
    ("R05", Error, "<<ProcessGrouping>> runs from an <<ApplicationProcess>> to a <<ProcessGroup>>");
    ("R06", Error, "every process belongs to at most one group (none: warning)");
    ("R07", Error, "a group's ProcessType matches every member's ProcessType");
    ("R08", Error, "at most one <<Platform>> class per model, and it is passive");
    ("R09", Error, "every <<PlatformComponentInstance>> is typed by a <<PlatformComponent>>");
    ("R10", Error, "PlatformComponentInstance IDs are unique");
    ("R11", Error, "a wrapper joins a PE instance to a segment, or two segments (bridge)");
    ("R12", Error, "wrapper addresses are unique within a platform");
    ("R13", Error, "<<PlatformMapping>> runs from a <<ProcessGroup>> to a <<PlatformComponentInstance>>");
    ("R14", Error, "every group maps to exactly one PE (unmapped: warning; multiple: error)");
    ("R15", Error, "hardware groups map to hw accelerators, and only they do");
    ("R16", Warning, "every PE instance is attached to some communication segment");
    ("R17", Warning, "hard-real-time processes do not share a PE with higher-priority foreign processes");
    ("R18", Warning, "the mapped processes' code+data memory fits the PE's IntMemory");
  ]

type report = {
  uml_diagnostics : Uml.Model.diagnostic list;
  profile_problems : Profile.Apply.problem list;
  rule_diagnostics : diagnostic list;
}

let validate model apps =
  let view = View.of_model model apps in
  {
    uml_diagnostics = Uml.Model.check model;
    profile_problems = Profile.Apply.check Stereotypes.profile model apps;
    rule_diagnostics = check view;
  }

let is_valid r =
  r.uml_diagnostics = [] && r.profile_problems = []
  && errors r.rule_diagnostics = []

let pp_report fmt r =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun d -> Format.fprintf fmt "uml: %a@," Uml.Model.pp_diagnostic d)
    r.uml_diagnostics;
  List.iter
    (fun p -> Format.fprintf fmt "profile: %a@," Profile.Apply.pp_problem p)
    r.profile_problems;
  List.iter
    (fun d -> Format.fprintf fmt "rule: %a@," pp_diagnostic d)
    r.rule_diagnostics;
  if r.uml_diagnostics = [] && r.profile_problems = [] && r.rule_diagnostics = []
  then Format.fprintf fmt "model is valid@,";
  Format.fprintf fmt "@]"
