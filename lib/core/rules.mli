(** TUT-Profile design rules.

    The paper: "TUT-Profile classifies different application and platform
    components by defining various stereotypes and strict rules how to
    use them.  The objective is to enhance the support of external tools
    for automatic analyzing, profiling, and modifying the UML 2.0 model."
    The rules below are those strict usage rules, numbered so diagnostics
    are stable across releases.

    - R01 at most one [<<Application>>] class per model, and it is passive.
    - R02 every [<<ApplicationComponent>>] class is active (has behaviour).
    - R03 every part typed by an [<<ApplicationComponent>>] class carries
          [<<ApplicationProcess>>].
    - R04 every [<<ApplicationProcess>>] part is typed by an
          [<<ApplicationComponent>>] class.
    - R05 a [<<ProcessGrouping>>] dependency runs from an
          [<<ApplicationProcess>>] to a [<<ProcessGroup>>].
    - R06 every [<<ApplicationProcess>>] belongs to at most one group;
          ungrouped processes are reported as warnings (they cannot be
          mapped).
    - R07 if a [<<ProcessGroup>>] declares a ProcessType, every member
          process declares the same ProcessType.
    - R08 at most one [<<Platform>>] class per model, and it is passive.
    - R09 every [<<PlatformComponentInstance>>] part is typed by a
          [<<PlatformComponent>>] class.
    - R10 PlatformComponentInstance IDs are unique.
    - R11 a [<<CommunicationWrapper>>] connector joins a PE instance to a
          communication segment, or two segments (a bridge).
    - R12 wrapper addresses are unique within a platform.
    - R13 a [<<PlatformMapping>>] dependency runs from a
          [<<ProcessGroup>>] to a [<<PlatformComponentInstance>>].
    - R14 every group is mapped to exactly one PE instance (unmapped:
          warning; multiply mapped: error).
    - R15 a group with ProcessType [hardware] maps to a PE whose
          component Type is [hw_accelerator], and vice versa.
    - R16 every PE instance is reachable from some communication segment
          (isolated PEs cannot communicate) — warning.
    - R17 hard-real-time processes must not share a PE with a
          lower-priority process of a different group — warning (the
          schedulability analysis of the Real-time UML profile is out of
          scope; this is the profile's structural approximation).
    - R18 the code+data memory of the processes mapped to a PE instance
          must fit its IntMemory — warning ("size of a process group
          (code size, memory requirements)" is one of the paper's
          grouping criteria).  Only checked when both sides declare the
          relevant tags. *)

type severity = Lint.Diagnostic.severity = Error | Warning
(** Re-exported from the shared diagnostics core ({!Lint.Diagnostic}):
    design rules (R-codes) and behavioural lint passes (L-codes) report
    through one type, one severity scale, one rendering path. *)

type diagnostic = Lint.Diagnostic.t = {
  rule : string;  (** e.g. "R03" *)
  severity : severity;
  element : Uml.Element.ref_ option;
  message : string;
}

val pp_diagnostic : Format.formatter -> diagnostic -> unit

val check : View.t -> diagnostic list
(** Run all design rules on a typed view. *)

val catalog : (string * severity * string) list
(** The rule catalogue: (code, worst severity it can emit, summary).
    Used by the CLI's [rules] listing; kept next to the implementation
    so the documentation cannot drift. *)

val errors : diagnostic list -> diagnostic list
val warnings : diagnostic list -> diagnostic list

type report = {
  uml_diagnostics : Uml.Model.diagnostic list;
  profile_problems : Profile.Apply.problem list;
  rule_diagnostics : diagnostic list;
}

val validate : Uml.Model.t -> Profile.Apply.t -> report
(** Full validation: UML well-formedness, profile type-checking, design
    rules. *)

val is_valid : report -> bool
(** No UML diagnostics, no profile problems, no rule [Error]s
    (warnings allowed). *)

val pp_report : Format.formatter -> report -> unit
