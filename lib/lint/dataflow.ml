open Efsm

let code_undeclared = "L04"
let code_dead_write = "L05"
let code_unused = "L06"

let rec expr_reads acc (e : Action.expr) =
  match e with
  | Action.Var name -> name :: acc
  | Action.Int _ | Action.Bool _ | Action.Param _ -> acc
  | Action.Neg e | Action.Not e -> expr_reads acc e
  | Action.Bin (_, a, b) -> expr_reads (expr_reads acc a) b

let rec stmt_reads acc (s : Action.stmt) =
  match s with
  | Action.Assign (_, e) | Action.Compute e -> expr_reads acc e
  | Action.Send { args; _ } -> List.fold_left expr_reads acc args
  | Action.If (cond, then_, else_) ->
    let acc = expr_reads acc cond in
    List.fold_left stmt_reads (List.fold_left stmt_reads acc then_) else_
  | Action.While (cond, body) ->
    List.fold_left stmt_reads (expr_reads acc cond) body

let reads (m : Machine.t) =
  let in_transition acc (tr : Machine.transition) =
    let acc =
      match tr.Machine.guard with
      | Some g -> expr_reads acc g
      | None -> acc
    in
    List.fold_left stmt_reads acc tr.Machine.actions
  in
  let in_state_actions acc (_, stmts) = List.fold_left stmt_reads acc stmts in
  let acc = List.fold_left in_transition [] m.Machine.transitions in
  let acc = List.fold_left in_state_actions acc m.Machine.entry_actions in
  List.fold_left in_state_actions acc m.Machine.exit_actions
  |> List.sort_uniq compare

(* Liveness: a variable is live when its value can reach a guard, a
   signal argument, a computation or a branch condition — directly, or
   through assignments into other live variables.  [x := x + 1] alone
   does not make [x] live, which is exactly how write-only counters are
   caught. *)

let rec stmt_sinks acc (s : Action.stmt) =
  match s with
  | Action.Assign _ -> acc
  | Action.Compute e -> expr_reads acc e
  | Action.Send { args; _ } -> List.fold_left expr_reads acc args
  | Action.If (cond, then_, else_) ->
    let acc = expr_reads acc cond in
    List.fold_left stmt_sinks (List.fold_left stmt_sinks acc then_) else_
  | Action.While (cond, body) ->
    List.fold_left stmt_sinks (expr_reads acc cond) body

let rec stmt_flows acc (s : Action.stmt) =
  match s with
  | Action.Assign (x, e) ->
    List.map (fun y -> (y, x)) (expr_reads [] e) @ acc
  | Action.Send _ | Action.Compute _ -> acc
  | Action.If (_, then_, else_) ->
    List.fold_left stmt_flows (List.fold_left stmt_flows acc then_) else_
  | Action.While (_, body) -> List.fold_left stmt_flows acc body

let live_variables (m : Machine.t) =
  let over_actions f acc =
    let acc =
      List.fold_left
        (fun acc (tr : Machine.transition) ->
          List.fold_left f acc tr.Machine.actions)
        acc m.Machine.transitions
    in
    let acc =
      List.fold_left
        (fun acc (_, stmts) -> List.fold_left f acc stmts)
        acc m.Machine.entry_actions
    in
    List.fold_left
      (fun acc (_, stmts) -> List.fold_left f acc stmts)
      acc m.Machine.exit_actions
  in
  let guard_sinks =
    List.fold_left
      (fun acc (tr : Machine.transition) ->
        match tr.Machine.guard with
        | Some g -> expr_reads acc g
        | None -> acc)
      [] m.Machine.transitions
  in
  let sinks = over_actions stmt_sinks guard_sinks |> List.sort_uniq compare in
  let flows = over_actions stmt_flows [] in
  let rec grow live =
    let live' =
      List.filter_map
        (fun (y, x) ->
          if List.mem x live && not (List.mem y live) then Some y else None)
        flows
      |> List.sort_uniq compare
    in
    if live' = [] then live else grow (List.sort_uniq compare (live' @ live))
  in
  grow sinks

let check_machine (class_name, (m : Machine.t)) =
  let element = Uml.Element.Class_ref class_name in
  let declared = List.map fst m.Machine.variables in
  let written = Const.assigned_variables m in
  let read = reads m in
  let live = live_variables m in
  let undeclared =
    List.filter_map
      (fun name ->
        if List.mem name declared then None
        else if List.mem name written then
          Some
            (Diagnostic.make ~element ~rule:code_undeclared Diagnostic.Warning
               (Printf.sprintf
                  "machine %s: variable %s is read without being declared; \
                   it only exists after some action assigns it \
                   (use-before-def risk)"
                  m.Machine.name name))
        else
          Some
            (Diagnostic.make ~element ~rule:code_undeclared Diagnostic.Error
               (Printf.sprintf
                  "machine %s: variable %s is read but never declared or \
                   assigned; evaluation will always fail"
                  m.Machine.name name)))
      read
  in
  let per_declared =
    List.filter_map
      (fun name ->
        let is_live = List.mem name live in
        let is_read = List.mem name read in
        let is_written = List.mem name written in
        if is_live then None
        else if is_written then
          Some
            (Diagnostic.make ~element ~rule:code_dead_write Diagnostic.Warning
               (Printf.sprintf
                  "machine %s: variable %s is written but its value never \
                   reaches a guard, signal or computation; all writes to it \
                   are dead"
                  m.Machine.name name))
        else if not is_read then
          Some
            (Diagnostic.make ~element ~rule:code_unused Diagnostic.Warning
               (Printf.sprintf "machine %s: variable %s is never used"
                  m.Machine.name name))
        else None)
      declared
  in
  undeclared @ per_declared

let pass =
  {
    Pass.name = "dataflow";
    codes = [ code_undeclared; code_dead_write; code_unused ];
    describe =
      "variable hygiene: undeclared reads, dead writes, unused variables";
    run = (fun ctx -> List.concat_map check_machine ctx.Pass.machines);
  }
