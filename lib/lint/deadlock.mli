(** Pass [deadlock] — L09.

    Wait-for cycle detection over machine instances.  A state is a
    *wait state* when every outgoing transition is signal-triggered —
    no timer, no completion, so only a message can move the machine on.
    An instance is a blocking candidate if some wait state has
    producers for its trigger signals but no environment escape; a
    fixpoint then strips candidates that some machine outside the
    candidate set could wake, and strongly connected components of the
    surviving wait-for edges (of size two or more, or self-loops) are
    reported.

    This is an over-approximation, stated as such in the message: the
    analysis does not model in-flight messages or whether the cycle's
    wait states are simultaneously occupied, so a request/response
    handshake between two machines is flagged even though the protocol
    may keep one side's reply always in flight.  The paper's design
    flow treats this as a review obligation, not a proof of deadlock. *)

val pass : Pass.t
