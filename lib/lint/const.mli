(** Constant propagation over the {!Efsm.Action} expression language.

    The lattice is flat: an expression either folds to a single
    {!Efsm.Action.value} or is [Unknown].  Machine variables contribute
    their initial value only when no statement anywhere in the machine
    ever assigns them (they are constants for the machine's whole life);
    signal parameters are always [Unknown].  Folding is sound, not
    complete — [Unknown] never causes a false "statically false"
    verdict, which is what the reachability and determinism passes rely
    on. *)

type value = Known of Efsm.Action.value | Unknown

val constants : Efsm.Machine.t -> (string * Efsm.Action.value) list
(** Variables declared by the machine that no transition, entry or exit
    action ever assigns, with their initial values. *)

val eval : (string * Efsm.Action.value) list -> Efsm.Action.expr -> value
(** Fold an expression under the given constant environment.
    Short-circuits: [false && _], [_ && false], [true || _], [_ || true]
    and [0 * _] fold even when the other operand is [Unknown].  Division
    or modulo by zero (a runtime [Type_error]) folds to [Unknown], as do
    ill-typed applications. *)

val statically_false : (string * Efsm.Action.value) list -> Efsm.Action.expr -> bool
val statically_true : (string * Efsm.Action.value) list -> Efsm.Action.expr -> bool

val assigned_variables : Efsm.Machine.t -> string list
(** Sorted, de-duplicated names assigned anywhere in the machine
    (transition actions, entry actions, exit actions, including inside
    [If]/[While] bodies). *)
