(** The shared diagnostics core.

    Every static check in the toolchain — the structural TUT-Profile
    design rules (R01…, {!Tut_profile.Rules}) and the behavioural lint
    passes (L01…, {!Lint.Engine}) — reports through this one type, so
    severity filtering, text rendering and JSON export are a single code
    path.  Codes are stable across releases: external tools may key on
    them. *)

type severity = Error | Warning

type t = {
  rule : string;  (** stable code, e.g. "R03" or "L05" *)
  severity : severity;
  element : Uml.Element.ref_ option;
  message : string;
}

val make :
  ?element:Uml.Element.ref_ -> rule:string -> severity -> string -> t

val severity_rank : severity -> int
(** [Warning] < [Error]; used for [--max-severity] gating. *)

val severity_to_string : severity -> string
val severity_of_string : string -> severity option

val pp_severity : Format.formatter -> severity -> unit

val pp : Format.formatter -> t -> unit
(** ["L05 warning at class:MsduReceiver: ..."] — the rendering the
    design rules have always used; kept byte-identical so existing
    golden output does not change. *)

val render : t -> string

val to_json : t -> Obs.Json.t
(** [{"rule": ..., "severity": ..., "element": ..., "message": ...}];
    [element] is [Null] when absent.  One diagnostic per line is the
    JSONL exposition of [tutflow lint --format jsonl]. *)

val errors : t list -> t list
val warnings : t list -> t list

val at_or_above : severity -> t list -> t list
(** Diagnostics whose severity rank is at least the given one. *)
