type deadlock_verdict =
  | Deadlock_free of { states : int; exhaustive : bool }
  | Deadlock_witness of { members : string list }
  | Deadlock_unknown of { states : int }

type context = {
  model : Uml.Model.t;
  machines : (string * Efsm.Machine.t) list;
  network : Network.t;
  deadlock_oracle : (members:string list -> deadlock_verdict) option;
}

type t = {
  name : string;
  codes : string list;
  describe : string;
  run : context -> Diagnostic.t list;
}

let context_of_model model =
  let machines =
    List.filter_map
      (fun (c : Uml.Classifier.t) ->
        match c.Uml.Classifier.behavior with
        | Some m -> Some (c.Uml.Classifier.name, m)
        | None -> None)
      (Uml.Model.active_classes model)
  in
  { model; machines; network = Network.elaborate model; deadlock_oracle = None }
