(** Pass [determinism] — L03.

    Two transitions out of the same state that share a trigger (same
    signal, same timer delay, or both completion) must carry guards a
    static prover can show mutually exclusive; otherwise the machine's
    reaction depends on declaration order and the model is flagged.

    The prover is sound but incomplete: it decomposes guards into
    [&&]-conjuncts and finds a contradicting pair — [g] against [not g],
    comparisons of the same two operands with disjoint outcome sets
    (e.g. [x < y] vs [x >= y], [x < y] vs [y < x]), or comparisons of
    one operand against two constants with disjoint solution sets
    (e.g. [x = 1] vs [x = 2], [x < 3] vs [x > 5]).  Guards it cannot
    separate are reported as overlapping. *)

val pass : Pass.t
