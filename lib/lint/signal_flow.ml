let code_undeliverable = "L07"
let code_orphan = "L08"

let check_instance ctx (inst : Network.instance) =
  let net = ctx.Pass.network in
  let machine = Option.get inst.Network.machine in
  let declared_ports =
    match Uml.Model.find_class ctx.Pass.model inst.Network.class_name with
    | Some cls ->
      List.map (fun (p : Uml.Port.t) -> p.Uml.Port.name) cls.Uml.Classifier.ports
    | None -> []
  in
  let sends =
    List.filter_map
      (fun (port, signal) ->
        if not (List.mem port declared_ports) then None
        else if Network.deliverable net ~sender:inst.Network.path ~port ~signal
        then None
        else
          Some
            (Diagnostic.make
               ~element:
                 (Uml.Element.Port_ref
                    { class_name = inst.Network.class_name; port })
               ~rule:code_undeliverable Diagnostic.Error
               (Printf.sprintf
                  "instance %s: signal %s sent through port %s reaches no \
                   receiver and no environment boundary"
                  inst.Network.path signal port)))
      (Efsm.Machine.signals_sent machine)
  in
  let receptions =
    List.filter_map
      (fun signal ->
        if
          Network.producers net ~receiver:inst.Network.path ~signal <> []
          || Network.env_injects net ~receiver:inst.Network.path ~signal
        then None
        else
          Some
            (Diagnostic.make
               ~element:(Uml.Element.Class_ref inst.Network.class_name)
               ~rule:code_orphan Diagnostic.Warning
               (Printf.sprintf
                  "instance %s: reception of %s can never occur: no connected \
                   machine produces it and the environment cannot inject it"
                  inst.Network.path signal)))
      (Efsm.Machine.signals_consumed machine)
  in
  sends @ receptions

let pass =
  {
    Pass.name = "signal-flow";
    codes = [ code_undeliverable; code_orphan ];
    describe =
      "sends with no reachable receiver and receptions nothing can produce, \
       over the elaborated connector network";
    run =
      (fun ctx ->
        List.concat_map (check_instance ctx)
          (Network.machine_instances ctx.Pass.network));
  }
