(** Pass [dataflow] — L04, L05, L06.

    Variable hygiene per machine:
    - L04: an expression reads a variable the machine never declares.
      Error when nothing ever assigns it either — evaluation is then
      guaranteed to raise at runtime; warning when some action does
      assign it, because the write—read order then depends on the
      path taken (use-before-def risk).
    - L05 (warning): a declared variable that is written but whose
      value never reaches a guard, a signal argument, a computation or
      a branch condition — directly or through other live variables —
      so every write to it is dead.  Liveness, not mere textual reads:
      [x := x + 1] alone leaves [x] dead, catching write-only counters.
    - L06 (warning): a declared variable that is never referenced at
      all. *)

val pass : Pass.t
