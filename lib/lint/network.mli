(** Elaborated instance network of a model.

    The composite-structure diagrams of the paper describe a static
    instance tree: each class that is never used as a part type is a
    root, and its parts (recursively) are the system's instances.
    Connectors induce an undirected connectivity relation over
    [(instance, port)] nodes; a connector endpoint with [part = None]
    names the enclosing instance's own boundary port, so the inside and
    outside views of a composite's port are literally the same node and
    relay chains through nested composites collapse into one connected
    component.

    Boundary ports of a *root* instance face the environment: their
    [receives] set is what the environment may inject, their [sends] set
    is what the environment absorbs.  The signal-flow and deadlock
    passes query delivery through this structure.

    Elaboration is total: dangling part types, connector endpoints to
    unknown parts or ports, and recursive composite structures (guarded
    by an ancestry check) all degrade to missing nodes rather than
    exceptions, because lint must run on exactly the broken models it
    exists to diagnose. *)

type instance = {
  path : string;  (** e.g. ["Tutmac_Protocol/dp/frag"] *)
  class_name : string;
  machine : Efsm.Machine.t option;
}

type t

val elaborate : Uml.Model.t -> t

val instances : t -> instance list
(** All instances, parents before children. *)

val machine_instances : t -> instance list
(** Instances whose class has behaviour. *)

val find_instance : t -> string -> instance option
val is_root : t -> string -> bool

val receivers : t -> sender:string -> port:string -> signal:string -> string list
(** Machine-instance paths connected to [(sender, port)] whose own port
    in that component can receive [signal]; the sending node itself is
    excluded, relay ports of structural composites do not count. *)

val env_absorbs : t -> sender:string -> port:string -> signal:string -> bool
(** The component of [(sender, port)] reaches a root boundary port whose
    [sends] set carries [signal] outward — or the sender is itself a
    root instance emitting through its own boundary port. *)

val deliverable : t -> sender:string -> port:string -> signal:string -> bool
(** [receivers <> [] || env_absorbs]. *)

val producers : t -> receiver:string -> signal:string -> string list
(** Machine-instance paths that can deliver [signal] to some
    [can_receive] port of [receiver] through its connected components. *)

val env_injects : t -> receiver:string -> signal:string -> bool
(** Some [can_receive] port of [receiver] is connected to a root
    boundary port that injects [signal] — or [receiver] is itself a
    root, whose receiving ports face the environment directly. *)
