type severity = Error | Warning

type t = {
  rule : string;
  severity : severity;
  element : Uml.Element.ref_ option;
  message : string;
}

let make ?element ~rule severity message =
  { rule; severity; element; message }

let severity_rank = function Warning -> 1 | Error -> 2

let severity_to_string = function Error -> "error" | Warning -> "warning"

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | _ -> None

let pp_severity fmt s = Format.pp_print_string fmt (severity_to_string s)

let pp fmt d =
  let pp_elt fmt = function
    | None -> ()
    | Some e -> Format.fprintf fmt " at %s" (Uml.Element.to_string e)
  in
  Format.fprintf fmt "%s %a%a: %s" d.rule pp_severity d.severity pp_elt
    d.element d.message

let render d = Format.asprintf "%a" pp d

let to_json d =
  Obs.Json.Obj
    [
      ("rule", Obs.Json.Str d.rule);
      ("severity", Obs.Json.Str (severity_to_string d.severity));
      ( "element",
        match d.element with
        | None -> Obs.Json.Null
        | Some e -> Obs.Json.Str (Uml.Element.to_string e) );
      ("message", Obs.Json.Str d.message);
    ]

let errors ds = List.filter (fun d -> d.severity = Error) ds
let warnings ds = List.filter (fun d -> d.severity = Warning) ds

let at_or_above threshold ds =
  List.filter (fun d -> severity_rank d.severity >= severity_rank threshold) ds
