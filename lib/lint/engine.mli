(** The lint engine: the pass registry and the one entry point.

    Passes run in registration order; within a pass, diagnostics come
    out in model declaration order, so the full report is deterministic
    and diffable (the CI reference file depends on this). *)

val passes : Pass.t list
(** reachability, determinism, dataflow, signal-flow, deadlock. *)

val find_pass : string -> Pass.t option

val catalog : (string * Diagnostic.severity * string) list
(** Every L-code with its severity and a one-line description, in code
    order.  For L04, which can demote, the listed severity is the worst
    case. *)

val run :
  ?obs:Obs.Scope.t ->
  ?selection:Pass.t list ->
  Pass.context ->
  (Pass.t * Diagnostic.t list) list
(** Run every pass in [selection] (default: all of {!passes}, in
    registration order).  Each pass gets an [Obs] span on the ["lint"] track
    (simulated timestamps: passes are instantaneous model-time events)
    and bumps [lint.pass_runs_total], [lint.diagnostics_total],
    [lint.errors_total] and [lint.warnings_total]. *)

val analyze : ?obs:Obs.Scope.t -> Uml.Model.t -> Diagnostic.t list
(** [run] on a fresh context, flattened. *)
