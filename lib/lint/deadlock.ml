open Efsm

let code = "L09"

(* States whose every outgoing transition waits on a signal, with the
   sorted trigger-signal set. *)
let wait_states (m : Machine.t) =
  List.filter_map
    (fun state ->
      let outs = Machine.outgoing m state in
      if outs = [] then None
      else
        let signals =
          List.filter_map
            (fun (tr : Machine.transition) ->
              match tr.Machine.trigger with
              | Machine.On_signal s -> Some s
              | Machine.After _ | Machine.Completion -> None)
            outs
        in
        if List.length signals = List.length outs then
          Some (state, List.sort_uniq compare signals)
        else None)
    m.Machine.states

let pp_members members = String.concat ", " members

let run ctx =
  let net = ctx.Pass.network in
  let instances = Network.machine_instances net in
  (* Per instance: wait states as (producers, env_escape) summaries. *)
  let summaries =
    List.map
      (fun (inst : Network.instance) ->
        let m = Option.get inst.Network.machine in
        let states =
          List.map
            (fun (state, signals) ->
              let env =
                List.exists
                  (fun signal ->
                    Network.env_injects net ~receiver:inst.Network.path ~signal)
                  signals
              in
              let prods =
                List.concat_map
                  (fun signal ->
                    Network.producers net ~receiver:inst.Network.path ~signal)
                  signals
                |> List.sort_uniq compare
              in
              (state, env, prods))
            (wait_states m)
        in
        (inst, states))
      instances
  in
  let blocking_states candidates (_, states) =
    List.filter
      (fun (_, env, prods) ->
        (not env) && prods <> []
        && List.for_all (fun p -> List.mem p candidates) prods)
      states
  in
  let all_paths =
    List.map (fun (i : Network.instance) -> i.Network.path) instances
  in
  let rec fixpoint candidates =
    let survivors =
      List.filter
        (fun ((inst : Network.instance), _ as s) ->
          List.mem inst.Network.path candidates
          && blocking_states candidates s <> [])
        summaries
      |> List.map (fun ((i : Network.instance), _) -> i.Network.path)
    in
    if List.length survivors = List.length candidates then candidates
    else fixpoint survivors
  in
  let candidates = fixpoint all_paths in
  (* Wait-for edges among the surviving candidates. *)
  let edges =
    List.concat_map
      (fun ((inst : Network.instance), _ as s) ->
        if not (List.mem inst.Network.path candidates) then []
        else
          blocking_states candidates s
          |> List.concat_map (fun (_, _, prods) ->
                 List.map (fun p -> (inst.Network.path, p)) prods))
      summaries
    |> List.sort_uniq compare
  in
  (* Transitive closure by iteration: the graphs are tiny. *)
  let reaches a b =
    let visited = Hashtbl.create 8 in
    let rec go x =
      x = b
      || (not (Hashtbl.mem visited x))
         && begin
              Hashtbl.replace visited x ();
              List.exists (fun (s, d) -> s = x && go d) edges
            end
    in
    List.exists (fun (s, d) -> s = a && (d = b || go d)) edges
  in
  let in_cycle = List.filter (fun p -> reaches p p) candidates in
  let rec group = function
    | [] -> []
    | p :: rest ->
      let same, other =
        List.partition (fun q -> reaches p q && reaches q p) rest
      in
      (p :: same) :: group other
  in
  let static_warning ?(suffix = "") members =
    Diagnostic.make ~rule:code Diagnostic.Warning
      (Printf.sprintf
         "wait-for cycle among %s: each machine has a state it can only \
          leave on a signal produced inside the cycle, with no timer or \
          environment escape (over-approximation: in-flight messages \
          are not modelled)%s"
         (pp_members members) suffix)
  in
  group (List.sort compare in_cycle)
  |> List.filter_map (fun members ->
         match ctx.Pass.deadlock_oracle with
         | None -> Some (static_warning members)
         | Some oracle -> (
           match oracle ~members with
           | Pass.Deadlock_free _ ->
             (* The checker proved no global deadlock is reachable
                within its budget: the static cycle is spurious. *)
             None
           | Pass.Deadlock_witness { members = wm }
             when List.exists (fun p -> List.mem p members) wm ->
             Some
               (Diagnostic.make ~rule:code Diagnostic.Error
                  (Printf.sprintf
                     "deadlock among %s confirmed by the model checker: a \
                      reachable global state leaves every member waiting on \
                      an empty queue (run `tutflow check` for the replayable \
                      counterexample)"
                     (pp_members wm)))
           | Pass.Deadlock_witness _ -> Some (static_warning members)
           | Pass.Deadlock_unknown _ ->
             Some
               (static_warning
                  ~suffix:" (model checker inconclusive within budget)"
                  members)))

let pass =
  {
    Pass.name = "deadlock";
    codes = [ code ];
    describe =
      "wait-for cycles: sets of machines that can only wake each other, \
       with no timer or environment escape";
    run;
  }
