open Efsm

let code_dead_state = "L01"
let code_false_guard = "L02"

let guard_false consts (tr : Machine.transition) =
  match tr.Machine.guard with
  | Some g -> Const.statically_false consts g
  | None -> false

let reachable consts (m : Machine.t) =
  let visited = Hashtbl.create 16 in
  let rec visit state =
    if not (Hashtbl.mem visited state) then begin
      Hashtbl.replace visited state ();
      List.iter
        (fun (tr : Machine.transition) ->
          if not (guard_false consts tr) then visit tr.Machine.target)
        (Machine.outgoing m state)
    end
  in
  visit m.Machine.initial;
  visited

let check_machine (class_name, (m : Machine.t)) =
  let consts = Const.constants m in
  let element = Uml.Element.Class_ref class_name in
  let live = reachable consts m in
  let dead =
    List.filter_map
      (fun state ->
        if Hashtbl.mem live state then None
        else
          Some
            (Diagnostic.make ~element ~rule:code_dead_state Diagnostic.Warning
               (Printf.sprintf
                  "machine %s: state %s is unreachable from initial state %s"
                  m.Machine.name state m.Machine.initial)))
      m.Machine.states
  in
  let false_guards =
    List.filter_map
      (fun (tr : Machine.transition) ->
        if guard_false consts tr then
          Some
            (Diagnostic.make ~element ~rule:code_false_guard Diagnostic.Warning
               (Printf.sprintf
                  "machine %s: guard on transition %s -> %s is statically \
                   false; the transition can never fire"
                  m.Machine.name tr.Machine.source tr.Machine.target))
        else None)
      m.Machine.transitions
  in
  dead @ false_guards

let pass =
  {
    Pass.name = "reachability";
    codes = [ code_dead_state; code_false_guard ];
    describe =
      "dead states and statically-false guards (constant propagation over \
       the action language)";
    run = (fun ctx -> List.concat_map check_machine ctx.Pass.machines);
  }
