open Efsm

let code = "L03"

let rec conjuncts (e : Action.expr) =
  match e with
  | Action.Bin (Action.And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

(* Outcome set of a comparison as the signs of [lhs - rhs] it accepts:
   (negative, zero, positive). *)
let outcome_set = function
  | Action.Lt -> Some (true, false, false)
  | Action.Le -> Some (true, true, false)
  | Action.Gt -> Some (false, false, true)
  | Action.Ge -> Some (false, true, true)
  | Action.Eq -> Some (false, true, false)
  | Action.Ne -> Some (true, false, true)
  | _ -> None

let outcomes_disjoint (n1, z1, p1) (n2, z2, p2) =
  (not (n1 && n2)) && (not (z1 && z2)) && not (p1 && p2)

(* [Bin (op, a, b)] is equivalent to [Bin (flip op, b, a)]. *)
let flip = function
  | Action.Lt -> Action.Gt
  | Action.Gt -> Action.Lt
  | Action.Le -> Action.Ge
  | Action.Ge -> Action.Le
  | op -> op

let member op k x =
  match op with
  | Action.Lt -> x < k
  | Action.Le -> x <= k
  | Action.Gt -> x > k
  | Action.Ge -> x >= k
  | Action.Eq -> x = k
  | Action.Ne -> x <> k
  | _ -> true

let known_int consts e =
  match Const.eval consts e with
  | Const.Known (Action.V_int k) -> Some k
  | _ -> None

(* Orient a comparison so a foldable constant sits on the right. *)
let oriented consts (e : Action.expr) =
  match e with
  | Action.Bin (op, l, r) when outcome_set op <> None -> (
    match known_int consts r with
    | Some k -> Some (op, l, k)
    | None -> (
      match known_int consts l with
      | Some k -> Some (flip op, r, k)
      | None -> None))
  | _ -> None

(* Can conjuncts [c1] and [c2] be shown contradictory? *)
let contradicts consts c1 c2 =
  let negation a b =
    match (a : Action.expr) with Action.Not e -> e = b | _ -> false
  in
  let same_operands =
    match (c1, c2) with
    | Action.Bin (op1, a, b), Action.Bin (op2, a', b') -> (
      match (outcome_set op1, outcome_set op2) with
      | Some s1, Some s2 when a = a' && b = b' -> outcomes_disjoint s1 s2
      | Some s1, _ when a = b' && b = a' -> (
        match outcome_set (flip op2) with
        | Some s2 -> outcomes_disjoint s1 s2
        | None -> false)
      | _ -> false)
    | _ -> false
  in
  let constant_ranges =
    match (oriented consts c1, oriented consts c2) with
    | Some (op1, lhs1, k1), Some (op2, lhs2, k2) when lhs1 = lhs2 ->
      (* Both solution sets are half-lines, points or punctured lines
         over the integers; if they intersect, they intersect at one of
         the boundary-adjacent candidates. *)
      let candidates = [ k1 - 1; k1; k1 + 1; k2 - 1; k2; k2 + 1 ] in
      not
        (List.exists (fun x -> member op1 k1 x && member op2 k2 x) candidates)
    | _ -> false
  in
  negation c1 c2 || negation c2 c1 || same_operands || constant_ranges

let exclusive consts (t1 : Machine.transition) (t2 : Machine.transition) =
  let false_guard (t : Machine.transition) =
    match t.Machine.guard with
    | Some g -> Const.statically_false consts g
    | None -> false
  in
  if false_guard t1 || false_guard t2 then true
  else
    match (t1.Machine.guard, t2.Machine.guard) with
    | None, _ | _, None -> false
    | Some g1, Some g2 ->
      let cs1 = conjuncts g1 and cs2 = conjuncts g2 in
      List.exists
        (fun c1 -> List.exists (fun c2 -> contradicts consts c1 c2) cs2)
        cs1

let trigger_label = function
  | Machine.On_signal s -> "signal " ^ s
  | Machine.After n -> Printf.sprintf "after(%d)" n
  | Machine.Completion -> "completion"

let rec pairs = function
  | [] -> []
  | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest

let check_machine (class_name, (m : Machine.t)) =
  let consts = Const.constants m in
  let element = Uml.Element.Class_ref class_name in
  List.concat_map
    (fun state ->
      Machine.outgoing m state
      |> pairs
      |> List.filter_map (fun ((t1 : Machine.transition), t2) ->
             if t1.Machine.trigger <> t2.Machine.trigger then None
             else if exclusive consts t1 t2 then None
             else
               Some
                 (Diagnostic.make ~element ~rule:code Diagnostic.Warning
                    (Printf.sprintf
                       "machine %s: state %s: transitions to %s and %s both \
                        fire on %s and their guards are not mutually \
                        exclusive"
                       m.Machine.name state t1.Machine.target
                       t2.Machine.target
                       (trigger_label t1.Machine.trigger)))))
    m.Machine.states

let pass =
  {
    Pass.name = "determinism";
    codes = [ code ];
    describe =
      "same-state transitions sharing a trigger whose guards cannot be \
       proven mutually exclusive";
    run = (fun ctx -> List.concat_map check_machine ctx.Pass.machines);
  }
