let passes =
  [
    Reachability.pass;
    Determinism.pass;
    Dataflow.pass;
    Signal_flow.pass;
    Deadlock.pass;
  ]

let find_pass name =
  List.find_opt (fun (p : Pass.t) -> p.Pass.name = name) passes

let catalog =
  [
    ("L01", Diagnostic.Warning, "state unreachable from the initial state");
    ("L02", Diagnostic.Warning, "transition guard is statically false");
    ( "L03",
      Diagnostic.Warning,
      "same-trigger transitions with guards not provably exclusive" );
    ( "L04",
      Diagnostic.Error,
      "variable read without declaration (error when never assigned either)"
    );
    ( "L05",
      Diagnostic.Warning,
      "variable is written but its value is never used (dead writes)" );
    ("L06", Diagnostic.Warning, "variable is never used");
    ("L07", Diagnostic.Error, "signal sent to a port with no reachable receiver");
    ( "L08",
      Diagnostic.Warning,
      "reception that no machine or environment ever produces" );
    ( "L09",
      Diagnostic.Warning,
      "wait-for cycle with no timer or environment escape" );
  ]

let run ?(obs = Obs.Scope.null ()) ?(selection = passes) ctx =
  let live = Obs.Scope.live obs in
  let metrics = Obs.Scope.metrics obs in
  let tracer = Obs.Scope.tracer obs in
  let runs = Obs.Metrics.counter metrics "lint.pass_runs_total" in
  let total = Obs.Metrics.counter metrics "lint.diagnostics_total" in
  let errors = Obs.Metrics.counter metrics "lint.errors_total" in
  let warnings = Obs.Metrics.counter metrics "lint.warnings_total" in
  List.mapi
    (fun index (pass : Pass.t) ->
      let ds = pass.Pass.run ctx in
      if live then begin
        Obs.Metrics.inc runs;
        Obs.Metrics.inc ~by:(List.length ds) total;
        Obs.Metrics.inc ~by:(List.length (Diagnostic.errors ds)) errors;
        Obs.Metrics.inc ~by:(List.length (Diagnostic.warnings ds)) warnings;
        if Obs.Tracer.enabled tracer then
          Obs.Tracer.complete tracer
            ~ts_ns:(Int64.of_int (index * 1000))
            ~dur_ns:1000L ~cat:"lint" ~track:"lint"
            ~args:
              [
                ("pass", Obs.Span.Str pass.Pass.name);
                ("diagnostics", Obs.Span.Int (List.length ds));
              ]
            ("lint." ^ pass.Pass.name)
      end;
      (pass, ds))
    selection

let analyze ?obs model =
  run ?obs (Pass.context_of_model model) |> List.concat_map snd
