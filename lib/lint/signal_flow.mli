(** Pass [signal_flow] — L07, L08.

    Sends and receptions checked against the elaborated instance
    network ({!Network}):
    - L07 (error): a machine instance sends a signal through a port
      whose connected component contains no machine port that can
      receive it and no environment boundary that absorbs it — the
      signal is lost at runtime, always.  Sends through ports the class
      does not declare are left to [Uml.Model.check].
    - L08 (warning): a machine instance can consume a signal that no
      connected machine ever sends and the environment cannot inject —
      the transitions waiting on it are unreachable in any deployment.

    Unlike the per-connector compatibility check in [Uml.Model.check],
    these are whole-network questions: delivery may relay through any
    number of structural composites. *)

val pass : Pass.t
