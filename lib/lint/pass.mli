(** A lint pass: a named analysis over the elaborated model that
    reports {!Diagnostic.t} values with stable L-codes.

    Passes are pure — all shared derivation (the machine list, the
    elaborated {!Network.t}) is done once in {!context_of_model} and
    handed to every pass, so adding a pass never changes what the
    others see. *)

type deadlock_verdict =
  | Deadlock_free of { states : int; exhaustive : bool }
      (** no reachable deadlock within the checker's budget;
          [exhaustive] means the whole bounded state space was seen *)
  | Deadlock_witness of { members : string list }
      (** a reachable global deadlock among [members] (instance paths) *)
  | Deadlock_unknown of { states : int }
      (** exploration truncated or failed before a verdict *)

type context = {
  model : Uml.Model.t;
  machines : (string * Efsm.Machine.t) list;
      (** behaviours of active classes, [(class name, machine)],
          in model declaration order *)
  network : Network.t;
  deadlock_oracle : (members:string list -> deadlock_verdict) option;
      (** when set (by callers that link the model checker, e.g.
          [tutflow lint]), the deadlock pass consults it to discharge
          or confirm its static over-approximation.  [None] — the
          default from {!context_of_model} — keeps the pass purely
          static; the lint library itself never depends on the
          checker. *)
}

type t = {
  name : string;  (** e.g. ["reachability"] *)
  codes : string list;  (** L-codes this pass may emit *)
  describe : string;
  run : context -> Diagnostic.t list;
}

val context_of_model : Uml.Model.t -> context
