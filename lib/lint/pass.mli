(** A lint pass: a named analysis over the elaborated model that
    reports {!Diagnostic.t} values with stable L-codes.

    Passes are pure — all shared derivation (the machine list, the
    elaborated {!Network.t}) is done once in {!context_of_model} and
    handed to every pass, so adding a pass never changes what the
    others see. *)

type context = {
  model : Uml.Model.t;
  machines : (string * Efsm.Machine.t) list;
      (** behaviours of active classes, [(class name, machine)],
          in model declaration order *)
  network : Network.t;
}

type t = {
  name : string;  (** e.g. ["reachability"] *)
  codes : string list;  (** L-codes this pass may emit *)
  describe : string;
  run : context -> Diagnostic.t list;
}

val context_of_model : Uml.Model.t -> context
