(** Pass [reachability] — L01, L02.

    - L01 (warning): a state that no chain of transitions from the
      initial state can reach.  Transitions whose guard folds to [false]
      under constant propagation do not count as reaching edges.
    - L02 (warning): a transition whose guard is statically false — it
      can never fire, whatever the environment does. *)

val pass : Pass.t
