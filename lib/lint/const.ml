open Efsm

type value = Known of Action.value | Unknown

let rec stmt_assigns acc (stmt : Action.stmt) =
  match stmt with
  | Action.Assign (name, _) -> name :: acc
  | Action.Send _ | Action.Compute _ -> acc
  | Action.If (_, then_, else_) ->
    List.fold_left stmt_assigns (List.fold_left stmt_assigns acc then_) else_
  | Action.While (_, body) -> List.fold_left stmt_assigns acc body

let assigned_variables (machine : Machine.t) =
  let in_transition acc (tr : Machine.transition) =
    List.fold_left stmt_assigns acc tr.Machine.actions
  in
  let in_state_actions acc (_, stmts) =
    List.fold_left stmt_assigns acc stmts
  in
  let acc = List.fold_left in_transition [] machine.Machine.transitions in
  let acc = List.fold_left in_state_actions acc machine.Machine.entry_actions in
  List.fold_left in_state_actions acc machine.Machine.exit_actions
  |> List.sort_uniq compare

let constants (machine : Machine.t) =
  let assigned = assigned_variables machine in
  List.filter
    (fun (name, _) -> not (List.mem name assigned))
    machine.Machine.variables

let known_int = function Known (Action.V_int n) -> Some n | _ -> None
let known_bool = function Known (Action.V_bool b) -> Some b | _ -> None

let rec eval env (expr : Action.expr) =
  match expr with
  | Action.Int n -> Known (Action.V_int n)
  | Action.Bool b -> Known (Action.V_bool b)
  | Action.Var name -> (
    match List.assoc_opt name env with
    | Some v -> Known v
    | None -> Unknown)
  | Action.Param _ -> Unknown
  | Action.Neg e -> (
    match known_int (eval env e) with
    | Some n -> Known (Action.V_int (-n))
    | None -> Unknown)
  | Action.Not e -> (
    match known_bool (eval env e) with
    | Some b -> Known (Action.V_bool (not b))
    | None -> Unknown)
  | Action.Bin (op, a, b) -> eval_bin env op a b

and eval_bin env op a b =
  let va = eval env a and vb = eval env b in
  let int2 f =
    match known_int va, known_int vb with
    | Some x, Some y -> Known (Action.V_int (f x y))
    | _, _ -> Unknown
  in
  let cmp f =
    match known_int va, known_int vb with
    | Some x, Some y -> Known (Action.V_bool (f x y))
    | _, _ -> Unknown
  in
  match (op : Action.binop) with
  | Action.Add -> int2 ( + )
  | Action.Sub -> int2 ( - )
  | Action.Mul -> (
    (* 0 * x folds even when x is unknown: actions are pure. *)
    match known_int va, known_int vb with
    | Some 0, _ | _, Some 0 -> Known (Action.V_int 0)
    | Some x, Some y -> Known (Action.V_int (x * y))
    | _, _ -> Unknown)
  | Action.Div -> (
    match known_int va, known_int vb with
    | Some x, Some y when y <> 0 -> Known (Action.V_int (x / y))
    | _, _ -> Unknown)
  | Action.Mod -> (
    match known_int va, known_int vb with
    | Some x, Some y when y <> 0 -> Known (Action.V_int (x mod y))
    | _, _ -> Unknown)
  | Action.Eq -> (
    match va, vb with
    | Known x, Known y -> Known (Action.V_bool (Action.equal_value x y))
    | _, _ -> Unknown)
  | Action.Ne -> (
    match va, vb with
    | Known x, Known y -> Known (Action.V_bool (not (Action.equal_value x y)))
    | _, _ -> Unknown)
  | Action.Lt -> cmp ( < )
  | Action.Le -> cmp ( <= )
  | Action.Gt -> cmp ( > )
  | Action.Ge -> cmp ( >= )
  | Action.And -> (
    match known_bool va, known_bool vb with
    | Some false, _ | _, Some false -> Known (Action.V_bool false)
    | Some true, Some true -> Known (Action.V_bool true)
    | _, _ -> Unknown)
  | Action.Or -> (
    match known_bool va, known_bool vb with
    | Some true, _ | _, Some true -> Known (Action.V_bool true)
    | Some false, Some false -> Known (Action.V_bool false)
    | _, _ -> Unknown)

let statically_false env expr =
  match eval env expr with
  | Known (Action.V_bool false) -> true
  | _ -> false

let statically_true env expr =
  match eval env expr with
  | Known (Action.V_bool true) -> true
  | _ -> false
