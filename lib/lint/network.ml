open Uml

type instance = {
  path : string;
  class_name : string;
  machine : Efsm.Machine.t option;
}

type node = string * string

type t = {
  model : Model.t;
  order : instance list;
  by_path : (string, instance) Hashtbl.t;
  ports : (node, Port.t) Hashtbl.t;
  roots : string list;
  component : (node, node list) Hashtbl.t;
}

let elaborate model =
  let by_path = Hashtbl.create 32 in
  let ports = Hashtbl.create 64 in
  let order = ref [] in
  let uf : (node, node) Hashtbl.t = Hashtbl.create 64 in
  let nodes = ref [] in
  let touch n =
    if not (Hashtbl.mem uf n) then begin
      Hashtbl.replace uf n n;
      nodes := n :: !nodes
    end
  in
  let rec find n =
    let p = Hashtbl.find uf n in
    if p = n then n
    else begin
      let r = find p in
      Hashtbl.replace uf n r;
      r
    end
  in
  let union a b =
    touch a;
    touch b;
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace uf ra rb
  in
  let part_types =
    List.concat_map
      (fun (c : Classifier.t) ->
        List.map
          (fun (p : Classifier.part) -> p.Classifier.class_name)
          c.Classifier.parts)
      model.Model.classes
  in
  let root_classes =
    List.filter
      (fun (c : Classifier.t) -> not (List.mem c.Classifier.name part_types))
      model.Model.classes
  in
  let rec instantiate ancestry path (cls : Classifier.t) =
    if List.mem cls.Classifier.name ancestry then ()
    else begin
      Hashtbl.replace by_path path
        {
          path;
          class_name = cls.Classifier.name;
          machine = cls.Classifier.behavior;
        };
      order :=
        {
          path;
          class_name = cls.Classifier.name;
          machine = cls.Classifier.behavior;
        }
        :: !order;
      List.iter
        (fun (p : Port.t) ->
          let n = (path, p.Port.name) in
          Hashtbl.replace ports n p;
          touch n)
        cls.Classifier.ports;
      List.iter
        (fun (c : Connector.t) ->
          let node_of (e : Connector.endpoint) =
            match e.Connector.part with
            | None -> (path, e.Connector.port)
            | Some pn -> (path ^ "/" ^ pn, e.Connector.port)
          in
          union (node_of c.Connector.from_) (node_of c.Connector.to_))
        cls.Classifier.connectors;
      List.iter
        (fun (p : Classifier.part) ->
          match Model.find_class model p.Classifier.class_name with
          | Some sub ->
            instantiate
              (cls.Classifier.name :: ancestry)
              (path ^ "/" ^ p.Classifier.name)
              sub
          | None -> ())
        cls.Classifier.parts
    end
  in
  List.iter
    (fun (c : Classifier.t) -> instantiate [] c.Classifier.name c)
    root_classes;
  let by_repr = Hashtbl.create 64 in
  List.iter
    (fun n ->
      let r = find n in
      let existing = Option.value (Hashtbl.find_opt by_repr r) ~default:[] in
      Hashtbl.replace by_repr r (n :: existing))
    !nodes;
  let component = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _repr members ->
      List.iter (fun n -> Hashtbl.replace component n members) members)
    by_repr;
  {
    model;
    order = List.rev !order;
    by_path;
    ports;
    roots = List.map (fun (c : Classifier.t) -> c.Classifier.name) root_classes;
    component;
  }

let instances t = t.order

let machine_instances t =
  List.filter (fun i -> i.machine <> None) t.order

let find_instance t path = Hashtbl.find_opt t.by_path path
let is_root t path = List.mem path t.roots
let component t n = Option.value (Hashtbl.find_opt t.component n) ~default:[ n ]
let port_at t n = Hashtbl.find_opt t.ports n

let receivers t ~sender ~port ~signal =
  component t (sender, port)
  |> List.filter_map (fun (p, pt) ->
         if p = sender && pt = port then None
         else if is_root t p then None
         else
           match (port_at t (p, pt), Hashtbl.find_opt t.by_path p) with
           | Some prt, Some inst
             when inst.machine <> None && Port.can_receive prt signal ->
             Some p
           | _ -> None)
  |> List.sort_uniq compare

let env_absorbs t ~sender ~port ~signal =
  let own_boundary =
    is_root t sender
    &&
    match port_at t (sender, port) with
    | Some prt -> Port.can_send prt signal
    | None -> false
  in
  own_boundary
  || component t (sender, port)
     |> List.exists (fun (p, pt) ->
            (not (p = sender && pt = port))
            && is_root t p
            &&
            match port_at t (p, pt) with
            | Some prt -> Port.can_send prt signal
            | None -> false)

let deliverable t ~sender ~port ~signal =
  receivers t ~sender ~port ~signal <> [] || env_absorbs t ~sender ~port ~signal

let receiving_ports t path signal =
  match Hashtbl.find_opt t.by_path path with
  | None -> []
  | Some inst -> (
    match Model.find_class t.model inst.class_name with
    | None -> []
    | Some cls ->
      List.filter
        (fun (prt : Port.t) -> Port.can_receive prt signal)
        cls.Classifier.ports)

let producers t ~receiver ~signal =
  receiving_ports t receiver signal
  |> List.concat_map (fun (prt : Port.t) ->
         component t (receiver, prt.Port.name)
         |> List.filter_map (fun (p, pt) ->
                if p = receiver then None
                else
                  match Hashtbl.find_opt t.by_path p with
                  | Some { machine = Some m; _ } ->
                    if List.mem (pt, signal) (Efsm.Machine.signals_sent m) then
                      Some p
                    else None
                  | _ -> None))
  |> List.sort_uniq compare

let env_injects t ~receiver ~signal =
  let rports = receiving_ports t receiver signal in
  (is_root t receiver && rports <> [])
  || List.exists
       (fun (prt : Port.t) ->
         component t (receiver, prt.Port.name)
         |> List.exists (fun (p, pt) ->
                p <> receiver && is_root t p
                &&
                match port_at t (p, pt) with
                | Some bp -> Port.can_receive bp signal
                | None -> false))
       rports
