let polynomial = 0xEDB88320l

let bitwise data =
  let crc = ref 0xFFFFFFFFl in
  String.iter
    (fun c ->
      crc := Int32.logxor !crc (Int32.of_int (Char.code c));
      for _ = 0 to 7 do
        let lsb = Int32.logand !crc 1l in
        crc := Int32.shift_right_logical !crc 1;
        if lsb <> 0l then crc := Int32.logxor !crc polynomial
      done)
    data;
  Int32.logxor !crc 0xFFFFFFFFl

let table =
  lazy
    (Array.init 256 (fun n ->
         let crc = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           let lsb = Int32.logand !crc 1l in
           crc := Int32.shift_right_logical !crc 1;
           if lsb <> 0l then crc := Int32.logxor !crc polynomial
         done;
         !crc))

type state = int32

let init () = 0xFFFFFFFFl

let feed state data =
  let table = Lazy.force table in
  let crc = ref state in
  String.iter
    (fun c ->
      let index =
        Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code c))) 0xFFl)
      in
      crc := Int32.logxor (Int32.shift_right_logical !crc 8) table.(index))
    data;
  !crc

let finish state = Int32.logxor state 0xFFFFFFFFl

let table_driven data = finish (feed (init ()) data)
let digest = table_driven
let verify data ~crc = Int32.equal (digest data) crc

(* Framing: payload + 4-byte little-endian CRC trailer, the shape an
   802.11-style MAC would hand to the radio.  [deframe] is the
   receiver-side integrity check behind the runtime's ARQ. *)

let frame payload =
  let crc = digest payload in
  let b = Bytes.create (String.length payload + 4) in
  Bytes.blit_string payload 0 b 0 (String.length payload);
  Bytes.set_int32_le b (String.length payload) crc;
  Bytes.to_string b

let deframe framed =
  let n = String.length framed in
  if n < 4 then None
  else
    let payload = String.sub framed 0 (n - 4) in
    let crc = Bytes.get_int32_le (Bytes.of_string framed) (n - 4) in
    if verify payload ~crc then Some payload else None

let software_cycles ~bytes_len =
  (* Soft-core without byte-addressable CRC support: table lookup, xor,
     shift and loop bookkeeping per byte, plus call overhead. *)
  Int64.add 40L (Int64.mul 20L (Int64.of_int bytes_len))

let accelerator_cycles ~bytes_len =
  (* One 32-bit word per cycle through the accelerator datapath, plus a
     fixed setup/drain cost. *)
  let words = (bytes_len + 3) / 4 in
  Int64.add 8L (Int64.of_int words)
