(** CRC-32 as used by IEEE 802.3 / 802.11 frames.

    The TUTWLAN platform library contains a CRC-32 hardware accelerator
    for "hardware acceleration of protocol functions"; this module is the
    algorithm itself (bit-by-bit reference and the table-driven variant
    the software implementation would use) plus the cycle-cost models the
    co-simulation runtime charges for the software and accelerated
    versions.

    Polynomial 0xEDB88320 (reflected), initial value 0xFFFFFFFF, final
    XOR 0xFFFFFFFF — the standard Ethernet parameters. *)

val bitwise : string -> int32
(** Reference implementation, one bit at a time. *)

val table_driven : string -> int32
(** Byte-at-a-time with a precomputed 256-entry table.  Equal to
    {!bitwise} on every input (property-tested). *)

val digest : string -> int32
(** The production entry point (table-driven). *)

(** Incremental interface for streamed frames. *)

type state

val init : unit -> state
val feed : state -> string -> state
val finish : state -> int32

val verify : string -> crc:int32 -> bool

val frame : string -> string
(** [frame payload] appends the CRC-32 of the payload as a 4-byte
    little-endian trailer — the framing the runtime's retransmission
    layer puts on inter-PE messages. *)

val deframe : string -> string option
(** Strip and check the trailer: [Some payload] when the CRC matches,
    [None] on a corrupted (or too-short) frame.  [deframe (frame p) =
    Some p] for every [p]. *)

val software_cycles : bytes_len:int -> int64
(** Cycle cost of the software CRC on a general-purpose PE: per-byte
    table lookup plus loop overhead (about 20 cycles/byte on a soft
    core without a barrel shifter). *)

val accelerator_cycles : bytes_len:int -> int64
(** Cycle cost on the CRC hardware accelerator: one 32-bit word per
    cycle plus a fixed setup cost. *)
