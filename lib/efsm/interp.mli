(** EFSM interpreter.

    One {!t} is a running instance of a {!Machine.t}: current state plus a
    mutable variable environment.  The interpreter is *reactive* — the
    surrounding runtime owns time, queues and timers; it calls
    {!dispatch} / {!fire_timer} / {!run_completions} and receives the
    effects (signal emissions, computation costs) each step produced. *)

type t

type step = {
  fired : Machine.transition option;
      (** [None] when the event was discarded (no enabled transition) *)
  effects : Action.effect list;
}

val create : Machine.t -> t
(** Fresh instance in the initial state with initial variable values. *)

val machine : t -> Machine.t
val state : t -> string
val variables : t -> (string * Action.value) list
val read_var : t -> string -> Action.value option

val dispatch : t -> signal:string -> args:(string * Action.value) list -> step
(** Consume one signal event.  The first enabled [On_signal] transition
    (declaration order) from the current state fires; the event is
    discarded if none is enabled, matching the asynchronous
    discard-on-no-reception semantics of UML 2.0 statecharts.  A firing
    transition's effects are: source exit actions, transition actions,
    target entry actions (external-transition semantics, also for
    self-transitions). *)

val fire_timer : t -> entered_state:string -> step
(** Fire an [After] transition if the instance is still in
    [entered_state] and such a transition is enabled; otherwise the stale
    timer is discarded.  Only transitions whose delay equals the armed
    delay ({!timer_request}, the state's minimum) are considered — a
    longer [After] is not due yet when a shorter one expires. *)

val initial_entry : t -> Action.effect list
(** Execute the initial state's entry actions (call once, before any
    dispatch; the runtime does this at start-of-world). *)

val run_completions : t -> Action.effect list
(** Fire enabled [Completion] transitions to quiescence (bounded; raises
    [Action.Type_error] on a completion livelock). *)

val timer_request : t -> int option
(** Delay of the earliest [After] transition leaving the current state,
    if any — the runtime should arm a timer for the current state. *)

val reset : t -> unit
(** Back to the initial state and initial variable values. *)

val max_completion_chain : int
(** Bound on chained [Completion] transitions per step; exceeding it
    raises [Action.Type_error] {!completion_livelock_message}.  Shared
    with {!Compiled} so both engines livelock identically. *)

val completion_livelock_message : string
