type t = {
  machine : Machine.t;
  mutable state : string;
  mutable env : Action.env;
}

type step = {
  fired : Machine.transition option;
  effects : Action.effect list;
}

let create machine =
  {
    machine;
    state = machine.Machine.initial;
    env = Action.env_of_bindings machine.Machine.variables;
  }

let machine t = t.machine
let state t = t.state
let variables t = Action.env_bindings t.env
let read_var t name = Action.lookup t.env name

let guard_holds t ~params tr =
  match tr.Machine.guard with
  | None -> true
  | Some expr -> Action.eval_bool t.env ~params expr

(* UML external-transition semantics: exit actions of the source, then
   the transition's own actions, then entry actions of the target (also
   on self-transitions, which exit and re-enter). *)
let fire t ~params tr =
  let exit_effects =
    Action.exec t.env ~params (Machine.exit_of t.machine t.state)
  in
  let action_effects = Action.exec t.env ~params tr.Machine.actions in
  t.state <- tr.Machine.target;
  let entry_effects =
    Action.exec t.env ~params (Machine.entry_of t.machine t.state)
  in
  exit_effects @ action_effects @ entry_effects

(* Completion transitions chain (state A -completion-> B -completion-> C);
   bound the chain so a guard that is always true cannot livelock. *)
let max_completion_chain = 1_000
let completion_livelock_message = "completion transition livelock"

let run_completions t =
  let rec loop count acc =
    if count > max_completion_chain then
      raise (Action.Type_error completion_livelock_message);
    let enabled =
      List.find_opt
        (fun tr ->
          match tr.Machine.trigger with
          | Machine.Completion -> guard_holds t ~params:[] tr
          | Machine.On_signal _ | Machine.After _ -> false)
        (Machine.outgoing t.machine t.state)
    in
    match enabled with
    | None -> List.concat (List.rev acc)
    | Some tr -> loop (count + 1) (fire t ~params:[] tr :: acc)
  in
  loop 0 []

let dispatch t ~signal ~args =
  let enabled =
    List.find_opt
      (fun tr ->
        match tr.Machine.trigger with
        | Machine.On_signal s -> s = signal && guard_holds t ~params:args tr
        | Machine.After _ | Machine.Completion -> false)
      (Machine.outgoing t.machine t.state)
  in
  match enabled with
  | None -> { fired = None; effects = [] }
  | Some tr ->
    let effects = fire t ~params:args tr in
    let completions = run_completions t in
    { fired = Some tr; effects = effects @ completions }

let timer_request t =
  let delays =
    List.filter_map
      (fun tr ->
        match tr.Machine.trigger with
        | Machine.After delay -> Some delay
        | Machine.On_signal _ | Machine.Completion -> None)
      (Machine.outgoing t.machine t.state)
  in
  match List.sort compare delays with [] -> None | d :: _ -> Some d

(* The runtime arms one timer per state, for the earliest [After] delay
   ({!timer_request}).  When it fires, only transitions with exactly
   that delay are due — a longer [After] declared earlier must not fire
   at the shorter transition's expiry (it used to; see test_efsm's
   "timer fires the armed delay, not the first declared After"). *)
let fire_timer t ~entered_state =
  if t.state <> entered_state then { fired = None; effects = [] }
  else
    match timer_request t with
    | None -> { fired = None; effects = [] }
    | Some armed ->
      let enabled =
        List.find_opt
          (fun tr ->
            match tr.Machine.trigger with
            | Machine.After delay -> delay = armed && guard_holds t ~params:[] tr
            | Machine.On_signal _ | Machine.Completion -> false)
          (Machine.outgoing t.machine t.state)
      in
      (match enabled with
      | None -> { fired = None; effects = [] }
      | Some tr ->
        let effects = fire t ~params:[] tr in
        let completions = run_completions t in
        { fired = Some tr; effects = effects @ completions })

let initial_entry t =
  Action.exec t.env ~params:[] (Machine.entry_of t.machine t.machine.Machine.initial)

let reset t =
  t.state <- t.machine.Machine.initial;
  t.env <- Action.env_of_bindings t.machine.Machine.variables
