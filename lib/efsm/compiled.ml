(* Compiled EFSM engine.

   A {!Machine.t} is compiled once into integer-indexed tables — interned
   states/signals/variables/parameters, per-(state, signal) candidate
   transition arrays, and guards/actions flattened into a small stack
   bytecode — and then executed over preallocated int arrays.  The hot
   path (dispatching a signal, evaluating guards, running actions)
   allocates nothing except the values the public API is obliged to
   return ([Action.effect] lists and their argument values), exactly
   like the reference interpreter does.

   Semantics mirror {!Interp} bit for bit, including the exact
   [Action.Type_error] messages, evaluation order (left-to-right
   operands, short-circuit [&&]/[||], divisor checked after both
   operands), the [While] iteration bound and the completion-chain
   bound.  The differential suite (test/test_sim_compiled.ml) holds the
   two engines together under fuzzing. *)

(* ---- value tags ------------------------------------------------------ *)

let tag_unbound = '\000'
let tag_int = '\001'
let tag_bool = '\002'

(* ---- opcodes --------------------------------------------------------- *)
(* Operands follow their opcode inline in the code array. *)

let op_ret = 0
let op_push_int = 1 (* value *)
let op_push_bool = 2 (* 0/1 *)
let op_load_var = 3 (* var id *)
let op_load_param = 4 (* param id *)
let op_neg = 5
let op_not = 6
let op_add = 7
let op_sub = 8
let op_mul = 9
let op_div = 10
let op_mod = 11
let op_lt = 12
let op_le = 13
let op_gt = 14
let op_ge = 15
let op_eq = 16
let op_ne = 17
let op_jmp = 18 (* addr *)
let op_jz_bool = 19 (* addr; pop, must be bool, jump when false *)
let op_jnz_bool = 20 (* addr; pop, must be bool, jump when true *)
let op_check_bool = 21 (* top of stack must be bool *)
let op_store_var = 22 (* var id *)
let op_send = 23 (* send-site id *)
let op_compute = 24
let op_iter_reset = 25 (* loop counter id *)
let op_iter_check = 26 (* loop counter id *)
let op_check_int = 27 (* top of stack must be an int; not popped *)
let op_compute_const = 28 (* const-effect id; literal positive Compute *)

type send_site = { s_port : string; s_signal : string; s_argc : int }

type ctrans = {
  t_guard : int;  (** entry pc of the guard program, -1 = no guard *)
  t_actions : int;  (** entry pc of the transition-action program *)
  t_target : int;  (** target state id *)
  t_delay : int;  (** [After] delay, -1 otherwise *)
  t_machine_tr : Machine.transition;  (** original record, for [step.fired] *)
  t_fired : Machine.transition option;
      (** [Some t_machine_tr], boxed once at compile time so a firing
          dispatch does not allocate the option *)
}

type program = {
  machine : Machine.t;
  code : int array;
  (* interning tables *)
  state_names : string array;
  var_names : string array;
  var_ids : (string, int) Hashtbl.t;
  param_names : string array;
  param_ids : (string, int) Hashtbl.t;
  signal_ids : (string, int) Hashtbl.t;  (** consumed signals only *)
  sites : send_site array;
  consts : Action.effect array;
      (** preallocated [Eff_compute] effects of literal compute costs *)
  (* initial variable values, pre-unpacked: (-1, unbound) for names only
     ever assigned at runtime *)
  var_init_v : int array;
  var_init_t : Bytes.t;
  initial_state : int;
  (* per-state dispatch tables, all in declaration order *)
  on_signal : ctrans array array array;  (** [state].(signal id) *)
  afters : ctrans array array;  (** only min-delay transitions; see below *)
  after_min : int array;  (** earliest After delay per state, -1 = none *)
  completions : ctrans array array;
  entry_pc : int array;  (** -1 = no entry actions *)
  exit_pc : int array;
  max_stack : int;
  n_loops : int;
}

(* ---- compilation ----------------------------------------------------- *)

type emitter = {
  mutable buf : int array;
  mutable len : int;
  mutable loops : int;
  prog_sites : send_site list ref;
  prog_consts : Action.effect list ref;
  p_state_ids : (string, int) Hashtbl.t;
  p_var_ids : (string, int) Hashtbl.t;
  p_var_names : string list ref;
  p_param_ids : (string, int) Hashtbl.t;
  p_param_names : string list ref;
}

let emit e op =
  if e.len = Array.length e.buf then begin
    let bigger = Array.make (2 * e.len) 0 in
    Array.blit e.buf 0 bigger 0 e.len;
    e.buf <- bigger
  end;
  e.buf.(e.len) <- op;
  e.len <- e.len + 1

let patch e at value = e.buf.(at) <- value

let intern ids names name =
  match Hashtbl.find_opt ids name with
  | Some id -> id
  | None ->
    let id = Hashtbl.length ids in
    Hashtbl.add ids name id;
    names := name :: !names;
    id

let var_id e name = intern e.p_var_ids e.p_var_names name
let param_id e name = intern e.p_param_ids e.p_param_names name

(* Stack need of an expression/statement, for sizing the preallocated
   evaluation stack.  Left operands stay on the stack while the right
   operand evaluates, hence the [+ 1]. *)
let rec expr_depth = function
  | Action.Int _ | Action.Bool _ | Action.Var _ | Action.Param _ -> 1
  | Action.Neg e | Action.Not e -> expr_depth e
  | Action.Bin ((Action.And | Action.Or), a, b) ->
    max (expr_depth a) (expr_depth b)
  | Action.Bin (_, a, b) -> max (expr_depth a) (expr_depth b + 1)

let rec stmt_depth = function
  | Action.Assign (_, e) | Action.Compute e -> expr_depth e
  | Action.Send { args; _ } ->
    List.fold_left
      (fun (i, acc) arg -> (i + 1, max acc (i + expr_depth arg)))
      (0, 1) args
    |> snd
  | Action.If (cond, then_, else_) ->
    max (expr_depth cond)
      (max (stmts_depth then_) (stmts_depth else_))
  | Action.While (cond, body) -> max (expr_depth cond) (stmts_depth body)

and stmts_depth stmts =
  List.fold_left (fun acc s -> max acc (stmt_depth s)) 1 stmts

let rec compile_expr e expr =
  match expr with
  | Action.Int n ->
    emit e op_push_int;
    emit e n
  | Action.Bool b ->
    emit e op_push_bool;
    emit e (if b then 1 else 0)
  | Action.Var name ->
    emit e op_load_var;
    emit e (var_id e name)
  | Action.Param name ->
    emit e op_load_param;
    emit e (param_id e name)
  | Action.Neg x ->
    compile_expr e x;
    emit e op_neg
  | Action.Not x ->
    compile_expr e x;
    emit e op_not
  | Action.Bin (Action.And, a, b) ->
    (* a && b: if a is false the result is false and b is never
       evaluated (so an error in b stays silent), matching [&&]. *)
    compile_expr e a;
    emit e op_jz_bool;
    let to_false = e.len in
    emit e 0;
    compile_expr e b;
    emit e op_check_bool;
    emit e op_jmp;
    let to_end = e.len in
    emit e 0;
    patch e to_false e.len;
    emit e op_push_bool;
    emit e 0;
    patch e to_end e.len
  | Action.Bin (Action.Or, a, b) ->
    compile_expr e a;
    emit e op_jnz_bool;
    let to_true = e.len in
    emit e 0;
    compile_expr e b;
    emit e op_check_bool;
    emit e op_jmp;
    let to_end = e.len in
    emit e 0;
    patch e to_true e.len;
    emit e op_push_bool;
    emit e 1;
    patch e to_end e.len
  | Action.Bin (((Action.Eq | Action.Ne) as op), a, b) ->
    (* no operand type checks: [V_int _ = V_bool _] is plain [false] *)
    compile_expr e a;
    compile_expr e b;
    emit e (if op = Action.Eq then op_eq else op_ne)
  | Action.Bin (op, a, b) ->
    (* The reference checks the left operand is an integer *before*
       evaluating the right one ([eval_int a] then [eval_int b]), so a
       boolean left operand must win over an error inside the right —
       hence the CHECK_INT between the operands. *)
    compile_expr e a;
    emit e op_check_int;
    compile_expr e b;
    emit e
      (match op with
      | Action.Add -> op_add
      | Action.Sub -> op_sub
      | Action.Mul -> op_mul
      | Action.Div -> op_div
      | Action.Mod -> op_mod
      | Action.Lt -> op_lt
      | Action.Le -> op_le
      | Action.Gt -> op_gt
      | Action.Ge -> op_ge
      | Action.Eq | Action.Ne | Action.And | Action.Or -> assert false)

let rec compile_stmt e stmt =
  match stmt with
  | Action.Assign (name, expr) ->
    compile_expr e expr;
    emit e op_store_var;
    emit e (var_id e name)
  | Action.Send { port; signal; args } ->
    List.iter (compile_expr e) args;
    let site = { s_port = port; s_signal = signal; s_argc = List.length args } in
    let id = List.length !(e.prog_sites) in
    e.prog_sites := site :: !(e.prog_sites);
    emit e op_send;
    emit e id
  | Action.Compute (Action.Int n) when n >= 0 ->
    (* a literal non-negative cost can neither fail the int check nor
       the negativity check, so the effect is boxed once at compile
       time; zero-cost computes emit no effect in the reference either *)
    if n > 0 then begin
      let id = List.length !(e.prog_consts) in
      e.prog_consts := Action.Eff_compute n :: !(e.prog_consts);
      emit e op_compute_const;
      emit e id
    end
  | Action.Compute expr ->
    compile_expr e expr;
    emit e op_compute
  | Action.If (cond, then_, else_) ->
    compile_expr e cond;
    emit e op_jz_bool;
    let to_else = e.len in
    emit e 0;
    List.iter (compile_stmt e) then_;
    emit e op_jmp;
    let to_end = e.len in
    emit e 0;
    patch e to_else e.len;
    List.iter (compile_stmt e) else_;
    patch e to_end e.len
  | Action.While (cond, body) ->
    let k = e.loops in
    e.loops <- e.loops + 1;
    emit e op_iter_reset;
    emit e k;
    let head = e.len in
    emit e op_iter_check;
    emit e k;
    compile_expr e cond;
    emit e op_jz_bool;
    let to_end = e.len in
    emit e 0;
    List.iter (compile_stmt e) body;
    emit e op_jmp;
    emit e head;
    patch e to_end e.len

(* Compile a statement block; returns its entry pc, or -1 for an empty
   block (nothing to run). *)
let compile_block e stmts =
  match stmts with
  | [] -> -1
  | _ ->
    let entry = e.len in
    List.iter (compile_stmt e) stmts;
    emit e op_ret;
    entry

let compile_guard e = function
  | None -> -1
  | Some expr ->
    let entry = e.len in
    compile_expr e expr;
    emit e op_ret;
    entry

let unpack_value = function
  | Action.V_int n -> (n, tag_int)
  | Action.V_bool b -> ((if b then 1 else 0), tag_bool)

let compile machine =
  let e =
    {
      buf = Array.make 256 0;
      len = 0;
      loops = 0;
      prog_sites = ref [];
      prog_consts = ref [];
      p_state_ids = Hashtbl.create 16;
      p_var_ids = Hashtbl.create 16;
      p_var_names = ref [];
      p_param_ids = Hashtbl.create 8;
      p_param_names = ref [];
    }
  in
  (* intern states in declaration order *)
  List.iteri
    (fun i s -> Hashtbl.add e.p_state_ids s i)
    machine.Machine.states;
  let n_states = List.length machine.Machine.states in
  (* declared variables first, so initial values line up *)
  List.iter (fun (name, _) -> ignore (var_id e name)) machine.Machine.variables;
  (* guards/actions: compile per transition and per state block *)
  let trans_compiled =
    List.map
      (fun (tr : Machine.transition) ->
        let guard = compile_guard e tr.Machine.guard in
        let actions = compile_block e tr.Machine.actions in
        (tr, guard, actions))
      machine.Machine.transitions
  in
  let block_of assoc state =
    compile_block e
      (Option.value ~default:[] (List.assoc_opt state assoc))
  in
  let states = Array.of_list machine.Machine.states in
  let entry_pc = Array.map (block_of machine.Machine.entry_actions) states in
  let exit_pc = Array.map (block_of machine.Machine.exit_actions) states in
  (* interning of consumed signals *)
  let signal_ids = Hashtbl.create 16 in
  List.iteri
    (fun i s -> Hashtbl.add signal_ids s i)
    (Machine.signals_consumed machine);
  let n_signals = Hashtbl.length signal_ids in
  let state_id s = Hashtbl.find e.p_state_ids s in
  let ctrans_of (tr : Machine.transition) guard actions =
    {
      t_guard = guard;
      t_actions = actions;
      t_target = state_id tr.Machine.target;
      t_delay =
        (match tr.Machine.trigger with
        | Machine.After d -> d
        | Machine.On_signal _ | Machine.Completion -> -1);
      t_machine_tr = tr;
      t_fired = Some tr;
    }
  in
  (* per-state candidate tables, declaration order *)
  let on_signal =
    Array.init n_states (fun _ -> Array.make n_signals [||])
  in
  let afters = Array.make n_states [||] in
  let after_min = Array.make n_states (-1) in
  let completions = Array.make n_states [||] in
  for s = 0 to n_states - 1 do
    let from_here =
      List.filter_map
        (fun ((tr : Machine.transition), g, a) ->
          if state_id tr.Machine.source = s then Some (ctrans_of tr g a)
          else None)
        trans_compiled
    in
    for sig_ = 0 to n_signals - 1 do
      on_signal.(s).(sig_) <-
        Array.of_list
          (List.filter
             (fun c ->
               match c.t_machine_tr.Machine.trigger with
               | Machine.On_signal name ->
                 Hashtbl.find signal_ids name = sig_
               | Machine.After _ | Machine.Completion -> false)
             from_here)
    done;
    let all_afters = List.filter (fun c -> c.t_delay >= 0) from_here in
    let min_delay =
      List.fold_left
        (fun acc c -> if acc < 0 || c.t_delay < acc then c.t_delay else acc)
        (-1) all_afters
    in
    after_min.(s) <- min_delay;
    (* Only minimum-delay transitions can fire when the armed timer
       expires ({!Interp.fire_timer}); longer ones are not due yet. *)
    afters.(s) <-
      Array.of_list (List.filter (fun c -> c.t_delay = min_delay) all_afters);
    completions.(s) <-
      Array.of_list
        (List.filter
           (fun c ->
             match c.t_machine_tr.Machine.trigger with
             | Machine.Completion -> true
             | Machine.On_signal _ | Machine.After _ -> false)
           from_here)
  done;
  let var_names = Array.of_list (List.rev !(e.p_var_names)) in
  let n_vars = Array.length var_names in
  let var_init_v = Array.make n_vars 0 in
  let var_init_t = Bytes.make n_vars tag_unbound in
  List.iter
    (fun (name, value) ->
      let id = Hashtbl.find e.p_var_ids name in
      let v, tag = unpack_value value in
      var_init_v.(id) <- v;
      Bytes.set var_init_t id tag)
    machine.Machine.variables;
  let max_stack =
    let block_depth stmts = stmts_depth stmts in
    let guard_depth = function None -> 1 | Some g -> expr_depth g in
    let tr_depth (tr : Machine.transition) =
      max (guard_depth tr.Machine.guard) (block_depth tr.Machine.actions)
    in
    let assoc_depth assoc =
      List.fold_left (fun acc (_, stmts) -> max acc (block_depth stmts)) 1 assoc
    in
    List.fold_left
      (fun acc tr -> max acc (tr_depth tr))
      (max
         (assoc_depth machine.Machine.entry_actions)
         (assoc_depth machine.Machine.exit_actions))
      machine.Machine.transitions
  in
  {
    machine;
    code = Array.sub e.buf 0 e.len;
    state_names = states;
    var_names;
    var_ids = e.p_var_ids;
    param_names = Array.of_list (List.rev !(e.p_param_names));
    param_ids = e.p_param_ids;
    signal_ids;
    sites = Array.of_list (List.rev !(e.prog_sites));
    consts = Array.of_list (List.rev !(e.prog_consts));
    var_init_v;
    var_init_t;
    initial_state = state_id machine.Machine.initial;
    on_signal;
    afters;
    after_min;
    completions;
    entry_pc;
    exit_pc;
    max_stack = max_stack + 1;
    n_loops = max e.loops 1;
  }

(* ---- instances ------------------------------------------------------- *)

type t = {
  prog : program;
  mutable state : int;
  var_v : int array;
  var_t : Bytes.t;
  (* parameter slots: a slot is bound iff its generation matches the
     current one, so clearing all parameters is one increment *)
  par_v : int array;
  par_t : Bytes.t;
  par_gen : int array;
  mutable gen : int;
  (* evaluation stack *)
  stk_v : int array;
  stk_t : Bytes.t;
  loop_counters : int array;
  (* effect accumulator for the current step *)
  mutable eff : Action.effect array;
  mutable eff_len : int;
}

let create prog =
  let n_params = Array.length prog.param_names in
  {
    prog;
    state = prog.initial_state;
    var_v = Array.copy prog.var_init_v;
    var_t = Bytes.copy prog.var_init_t;
    par_v = Array.make (max n_params 1) 0;
    par_t = Bytes.make (max n_params 1) tag_unbound;
    par_gen = Array.make (max n_params 1) (-1);
    gen = 0;
    stk_v = Array.make prog.max_stack 0;
    stk_t = Bytes.make prog.max_stack tag_unbound;
    loop_counters = Array.make prog.n_loops 0;
    eff = Array.make 8 (Action.Eff_compute 0);
    eff_len = 0;
  }

let of_machine machine = create (compile machine)
let machine t = t.prog.machine
let program t = t.prog
let state t = t.prog.state_names.(t.state)

let pack_value v tag =
  if tag = tag_int then Action.V_int v else Action.V_bool (v <> 0)

let variables t =
  let acc = ref [] in
  for i = Array.length t.prog.var_names - 1 downto 0 do
    let tag = Bytes.get t.var_t i in
    if tag <> tag_unbound then
      acc := (t.prog.var_names.(i), pack_value t.var_v.(i) tag) :: !acc
  done;
  List.sort compare !acc

let read_var t name =
  match Hashtbl.find_opt t.prog.var_ids name with
  | None -> None
  | Some i ->
    let tag = Bytes.get t.var_t i in
    if tag = tag_unbound then None else Some (pack_value t.var_v.(i) tag)

let reset t =
  t.state <- t.prog.initial_state;
  Array.blit t.prog.var_init_v 0 t.var_v 0 (Array.length t.var_v);
  Bytes.blit t.prog.var_init_t 0 t.var_t 0 (Bytes.length t.var_t);
  t.gen <- t.gen + 1;
  t.eff_len <- 0

(* ---- the VM ---------------------------------------------------------- *)

let type_error fmt = Printf.ksprintf (fun s -> raise (Action.Type_error s)) fmt

let push_effect t effect =
  if t.eff_len = Array.length t.eff then begin
    let bigger = Array.make (2 * t.eff_len) (Action.Eff_compute 0) in
    Array.blit t.eff 0 bigger 0 t.eff_len;
    t.eff <- bigger
  end;
  t.eff.(t.eff_len) <- effect;
  t.eff_len <- t.eff_len + 1

let effects_list t =
  let rec build i acc =
    if i < 0 then acc else build (i - 1) (t.eff.(i) :: acc)
  in
  build (t.eff_len - 1) []

(* Run the program at [pc]; returns the stack depth on RET (1 for
   guards, 0 for action blocks). *)
let run_prog t pc =
  let code = t.prog.code in
  let stk_v = t.stk_v and stk_t = t.stk_t in
  (* One tail-recursive loop over (pc, sp) as plain ints: without
     flambda, refs and the helper closures of the obvious while-loop
     formulation heap-allocate on every call, and [run_prog] runs once
     per guard and per action block — the hot path must not allocate.
     Dispatch is a [match] on the (dense, 0..27) opcode literals so the
     compiler emits a jump table instead of a compare chain, and array
     accesses are unchecked: every index is emitter-produced — pc stays
     inside [code] because blocks end in RET, the stack arrays are sized
     to the analytic max depth, and var/param/site/loop ids are interned
     at compile time.  Tag-check order matches {!Action.eval} exactly: a
     binary op checks the right (top) operand, then the left, then
     computes. *)
  let rec loop pc sp =
    match Array.unsafe_get code pc with
    | 0 (* op_ret *) -> sp
    | 1 (* op_push_int *) ->
      Array.unsafe_set stk_v sp (Array.unsafe_get code (pc + 1));
      Bytes.unsafe_set stk_t sp tag_int;
      loop (pc + 2) (sp + 1)
    | 2 (* op_push_bool *) ->
      Array.unsafe_set stk_v sp
        (if Array.unsafe_get code (pc + 1) <> 0 then 1 else 0);
      Bytes.unsafe_set stk_t sp tag_bool;
      loop (pc + 2) (sp + 1)
    | 3 (* op_load_var *) ->
      let i = Array.unsafe_get code (pc + 1) in
      let tag = Bytes.unsafe_get t.var_t i in
      if tag = tag_unbound then
        type_error "unbound variable %s" t.prog.var_names.(i);
      Array.unsafe_set stk_v sp (Array.unsafe_get t.var_v i);
      Bytes.unsafe_set stk_t sp tag;
      loop (pc + 2) (sp + 1)
    | 4 (* op_load_param *) ->
      let i = Array.unsafe_get code (pc + 1) in
      if Array.unsafe_get t.par_gen i <> t.gen then
        type_error "unbound signal parameter %s" t.prog.param_names.(i);
      Array.unsafe_set stk_v sp (Array.unsafe_get t.par_v i);
      Bytes.unsafe_set stk_t sp (Bytes.unsafe_get t.par_t i);
      loop (pc + 2) (sp + 1)
    | 5 (* op_neg *) ->
      let i = sp - 1 in
      if Bytes.unsafe_get stk_t i <> tag_int then type_error "expected an integer";
      Array.unsafe_set stk_v i (-Array.unsafe_get stk_v i);
      loop (pc + 1) sp
    | 6 (* op_not *) ->
      let i = sp - 1 in
      if Bytes.unsafe_get stk_t i <> tag_bool then type_error "expected a boolean";
      Array.unsafe_set stk_v i (1 - Array.unsafe_get stk_v i);
      loop (pc + 1) sp
    | 7 (* op_add *) ->
      if Bytes.unsafe_get stk_t (sp - 1) <> tag_int then
        type_error "expected an integer";
      if Bytes.unsafe_get stk_t (sp - 2) <> tag_int then
        type_error "expected an integer";
      Array.unsafe_set stk_v (sp - 2)
        (Array.unsafe_get stk_v (sp - 2) + Array.unsafe_get stk_v (sp - 1));
      loop (pc + 1) (sp - 1)
    | 8 (* op_sub *) ->
      if Bytes.unsafe_get stk_t (sp - 1) <> tag_int then
        type_error "expected an integer";
      if Bytes.unsafe_get stk_t (sp - 2) <> tag_int then
        type_error "expected an integer";
      Array.unsafe_set stk_v (sp - 2)
        (Array.unsafe_get stk_v (sp - 2) - Array.unsafe_get stk_v (sp - 1));
      loop (pc + 1) (sp - 1)
    | 9 (* op_mul *) ->
      if Bytes.unsafe_get stk_t (sp - 1) <> tag_int then
        type_error "expected an integer";
      if Bytes.unsafe_get stk_t (sp - 2) <> tag_int then
        type_error "expected an integer";
      Array.unsafe_set stk_v (sp - 2)
        (Array.unsafe_get stk_v (sp - 2) * Array.unsafe_get stk_v (sp - 1));
      loop (pc + 1) (sp - 1)
    | 10 (* op_div *) ->
      if Bytes.unsafe_get stk_t (sp - 1) <> tag_int then
        type_error "expected an integer";
      if Bytes.unsafe_get stk_t (sp - 2) <> tag_int then
        type_error "expected an integer";
      let d = Array.unsafe_get stk_v (sp - 1) in
      if d = 0 then type_error "division by zero";
      Array.unsafe_set stk_v (sp - 2) (Array.unsafe_get stk_v (sp - 2) / d);
      loop (pc + 1) (sp - 1)
    | 11 (* op_mod *) ->
      if Bytes.unsafe_get stk_t (sp - 1) <> tag_int then
        type_error "expected an integer";
      if Bytes.unsafe_get stk_t (sp - 2) <> tag_int then
        type_error "expected an integer";
      let d = Array.unsafe_get stk_v (sp - 1) in
      if d = 0 then type_error "modulo by zero";
      Array.unsafe_set stk_v (sp - 2) (Array.unsafe_get stk_v (sp - 2) mod d);
      loop (pc + 1) (sp - 1)
    | 12 (* op_lt *) ->
      if Bytes.unsafe_get stk_t (sp - 1) <> tag_int then
        type_error "expected an integer";
      if Bytes.unsafe_get stk_t (sp - 2) <> tag_int then
        type_error "expected an integer";
      Array.unsafe_set stk_v (sp - 2)
        (if Array.unsafe_get stk_v (sp - 2) < Array.unsafe_get stk_v (sp - 1)
         then 1
         else 0);
      Bytes.unsafe_set stk_t (sp - 2) tag_bool;
      loop (pc + 1) (sp - 1)
    | 13 (* op_le *) ->
      if Bytes.unsafe_get stk_t (sp - 1) <> tag_int then
        type_error "expected an integer";
      if Bytes.unsafe_get stk_t (sp - 2) <> tag_int then
        type_error "expected an integer";
      Array.unsafe_set stk_v (sp - 2)
        (if Array.unsafe_get stk_v (sp - 2) <= Array.unsafe_get stk_v (sp - 1)
         then 1
         else 0);
      Bytes.unsafe_set stk_t (sp - 2) tag_bool;
      loop (pc + 1) (sp - 1)
    | 14 (* op_gt *) ->
      if Bytes.unsafe_get stk_t (sp - 1) <> tag_int then
        type_error "expected an integer";
      if Bytes.unsafe_get stk_t (sp - 2) <> tag_int then
        type_error "expected an integer";
      Array.unsafe_set stk_v (sp - 2)
        (if Array.unsafe_get stk_v (sp - 2) > Array.unsafe_get stk_v (sp - 1)
         then 1
         else 0);
      Bytes.unsafe_set stk_t (sp - 2) tag_bool;
      loop (pc + 1) (sp - 1)
    | 15 (* op_ge *) ->
      if Bytes.unsafe_get stk_t (sp - 1) <> tag_int then
        type_error "expected an integer";
      if Bytes.unsafe_get stk_t (sp - 2) <> tag_int then
        type_error "expected an integer";
      Array.unsafe_set stk_v (sp - 2)
        (if Array.unsafe_get stk_v (sp - 2) >= Array.unsafe_get stk_v (sp - 1)
         then 1
         else 0);
      Bytes.unsafe_set stk_t (sp - 2) tag_bool;
      loop (pc + 1) (sp - 1)
    | 16 (* op_eq *) ->
      (* polymorphic comparison of tagged values, like [V_int _ = V_bool _]
         being plain [false] in the reference *)
      let equal =
        Bytes.unsafe_get stk_t (sp - 2) = Bytes.unsafe_get stk_t (sp - 1)
        && Array.unsafe_get stk_v (sp - 2) = Array.unsafe_get stk_v (sp - 1)
      in
      Array.unsafe_set stk_v (sp - 2) (if equal then 1 else 0);
      Bytes.unsafe_set stk_t (sp - 2) tag_bool;
      loop (pc + 1) (sp - 1)
    | 17 (* op_ne *) ->
      let equal =
        Bytes.unsafe_get stk_t (sp - 2) = Bytes.unsafe_get stk_t (sp - 1)
        && Array.unsafe_get stk_v (sp - 2) = Array.unsafe_get stk_v (sp - 1)
      in
      Array.unsafe_set stk_v (sp - 2) (if equal then 0 else 1);
      Bytes.unsafe_set stk_t (sp - 2) tag_bool;
      loop (pc + 1) (sp - 1)
    | 18 (* op_jmp *) -> loop (Array.unsafe_get code (pc + 1)) sp
    | 19 (* op_jz_bool *) ->
      if Bytes.unsafe_get stk_t (sp - 1) <> tag_bool then
        type_error "expected a boolean";
      if Array.unsafe_get stk_v (sp - 1) = 0 then
        loop (Array.unsafe_get code (pc + 1)) (sp - 1)
      else loop (pc + 2) (sp - 1)
    | 20 (* op_jnz_bool *) ->
      if Bytes.unsafe_get stk_t (sp - 1) <> tag_bool then
        type_error "expected a boolean";
      if Array.unsafe_get stk_v (sp - 1) <> 0 then
        loop (Array.unsafe_get code (pc + 1)) (sp - 1)
      else loop (pc + 2) (sp - 1)
    | 21 (* op_check_bool *) ->
      if Bytes.unsafe_get stk_t (sp - 1) <> tag_bool then
        type_error "expected a boolean";
      loop (pc + 1) sp
    | 22 (* op_store_var *) ->
      let i = Array.unsafe_get code (pc + 1) in
      Array.unsafe_set t.var_v i (Array.unsafe_get stk_v (sp - 1));
      Bytes.unsafe_set t.var_t i (Bytes.unsafe_get stk_t (sp - 1));
      loop (pc + 2) (sp - 1)
    | 23 (* op_send *) ->
      let site = t.prog.sites.(Array.unsafe_get code (pc + 1)) in
      (* arguments were pushed left-to-right: walk the stack top-down,
         consing, to rebuild them in positional order *)
      let argc = site.s_argc in
      let rec build j acc =
        if j < sp - argc then acc
        else build (j - 1) (pack_value stk_v.(j) (Bytes.get stk_t j) :: acc)
      in
      push_effect t
        (Action.Eff_send
           {
             port = site.s_port;
             signal = site.s_signal;
             args = build (sp - 1) [];
           });
      loop (pc + 2) (sp - argc)
    | 24 (* op_compute *) ->
      if Bytes.unsafe_get stk_t (sp - 1) <> tag_int then
        type_error "expected an integer";
      let cycles = Array.unsafe_get stk_v (sp - 1) in
      if cycles < 0 then type_error "negative computation cost";
      if cycles > 0 then push_effect t (Action.Eff_compute cycles);
      loop (pc + 1) (sp - 1)
    | 25 (* op_iter_reset *) ->
      Array.unsafe_set t.loop_counters (Array.unsafe_get code (pc + 1)) 0;
      loop (pc + 2) sp
    | 26 (* op_iter_check *) ->
      let k = Array.unsafe_get code (pc + 1) in
      let count = Array.unsafe_get t.loop_counters k in
      if count > Action.max_loop_iterations then
        type_error "loop exceeded %d iterations" Action.max_loop_iterations;
      Array.unsafe_set t.loop_counters k (count + 1);
      loop (pc + 2) sp
    | 27 (* op_check_int *) ->
      if Bytes.unsafe_get stk_t (sp - 1) <> tag_int then
        type_error "expected an integer";
      loop (pc + 1) sp
    | 28 (* op_compute_const *) ->
      push_effect t
        (Array.unsafe_get t.prog.consts (Array.unsafe_get code (pc + 1)));
      loop (pc + 2) sp
    | _ -> assert false
  in
  loop pc 0

(* Reference [While] counts an iteration only after the body ran, and
   checks before evaluating the condition: counter starts at 0, the
   check precedes the condition, the increment follows the body.  Our
   op order is ITER_RESET / head: ITER_CHECK; cond; JZ end; body; JMP
   head — the counter increments at ITER_CHECK, i.e. once per condition
   evaluation, so it reads one higher than the reference's count at the
   same point; both raise after [max_loop_iterations] completed
   iterations because the reference checks [count > max] with the
   pre-increment value and we check before incrementing. *)

let guard_holds t c =
  c.t_guard < 0
  ||
  let sp = run_prog t c.t_guard in
  ignore sp;
  (* the guard left exactly one value; it must be a boolean *)
  (if Bytes.get t.stk_t 0 <> tag_bool then type_error "expected a boolean");
  t.stk_v.(0) <> 0

let run_block t pc = if pc >= 0 then ignore (run_prog t pc)

(* Exit actions of the source, the transition's own actions, entry
   actions of the target — the same external-transition order as
   {!Interp.fire}; effects accumulate in execution order, which equals
   the reference's list concatenation. *)
let fire t c =
  run_block t t.prog.exit_pc.(t.state);
  run_block t c.t_actions;
  t.state <- c.t_target;
  run_block t t.prog.entry_pc.(t.state)

let clear_params t = t.gen <- t.gen + 1

(* Plain recursion (no [List.iter] closure) and inline tag unpacking
   (no [unpack_value] tuple): binding allocates nothing. *)
let rec bind_args t = function
  | [] -> ()
  | (name, value) :: rest ->
    (match Hashtbl.find t.prog.param_ids name with
    | exception Not_found -> ()
    | i ->
      (* first occurrence wins, like [List.assoc_opt] *)
      if t.par_gen.(i) <> t.gen then begin
        (match value with
        | Action.V_int n ->
          t.par_v.(i) <- n;
          Bytes.set t.par_t i tag_int
        | Action.V_bool b ->
          t.par_v.(i) <- (if b then 1 else 0);
          Bytes.set t.par_t i tag_bool);
        t.par_gen.(i) <- t.gen
      end);
    bind_args t rest

let bind_params t args =
  clear_params t;
  bind_args t args

(* Index of the first candidate whose guard holds, -1 if none: the
   per-dispatch option box of a [Some cand] result would be the only
   allocation on a transition miss. *)
let first_enabled_idx t cands =
  let n = Array.length cands in
  let rec find i =
    if i >= n then -1 else if guard_holds t cands.(i) then i else find (i + 1)
  in
  find 0

(* Completion chaining appends to the current effect buffer; parameters
   are never visible to completion guards or actions. *)
let run_completions_into t =
  clear_params t;
  let rec loop count =
    if count > Interp.max_completion_chain then
      raise (Action.Type_error Interp.completion_livelock_message);
    let cands = t.prog.completions.(t.state) in
    let i = first_enabled_idx t cands in
    if i >= 0 then begin
      fire t cands.(i);
      loop (count + 1)
    end
  in
  loop 0

(* The no-transition outcome is immutable and carries nothing, so every
   miss shares one preallocated step. *)
let no_step = { Interp.fired = None; Interp.effects = [] }

let dispatch t ~signal ~args =
  match Hashtbl.find t.prog.signal_ids signal with
  | exception Not_found -> no_step
  | sid ->
    bind_params t args;
    let cands = t.prog.on_signal.(t.state).(sid) in
    let i = first_enabled_idx t cands in
    if i < 0 then no_step
    else begin
      let c = cands.(i) in
      t.eff_len <- 0;
      fire t c;
      run_completions_into t;
      { Interp.fired = c.t_fired; Interp.effects = effects_list t }
    end

let signal_id t signal =
  match Hashtbl.find t.prog.signal_ids signal with
  | sid -> sid
  | exception Not_found -> -1

let dispatch_id t ~sid ~args =
  if sid < 0 then false
  else begin
    bind_params t args;
    let cands = t.prog.on_signal.(t.state).(sid) in
    let i = first_enabled_idx t cands in
    if i < 0 then false
    else begin
      t.eff_len <- 0;
      fire t cands.(i);
      run_completions_into t;
      true
    end
  end

let fire_timer_id t ~entered_state =
  if t.prog.state_names.(t.state) <> entered_state then false
  else begin
    clear_params t;
    let cands = t.prog.afters.(t.state) in
    let i = first_enabled_idx t cands in
    if i < 0 then false
    else begin
      t.eff_len <- 0;
      fire t cands.(i);
      run_completions_into t;
      true
    end
  end

let effect_count t = t.eff_len
let effect_at t i = t.eff.(i)

let fire_timer t ~entered_state =
  if t.prog.state_names.(t.state) <> entered_state then no_step
  else begin
    clear_params t;
    let cands = t.prog.afters.(t.state) in
    let i = first_enabled_idx t cands in
    if i < 0 then no_step
    else begin
      let c = cands.(i) in
      t.eff_len <- 0;
      fire t c;
      run_completions_into t;
      { Interp.fired = c.t_fired; Interp.effects = effects_list t }
    end
  end

let timer_request t =
  let d = t.prog.after_min.(t.state) in
  if d < 0 then None else Some d

let initial_entry t =
  clear_params t;
  t.eff_len <- 0;
  run_block t t.prog.entry_pc.(t.prog.initial_state);
  effects_list t

let run_completions t =
  t.eff_len <- 0;
  run_completions_into t;
  effects_list t

(* ---- introspection / direct state access ----------------------------- *)
(* The model checker stores global states as flat id-indexed vectors and
   needs to snapshot/restore an instance without going through names.
   The persistent cross-step state of an instance is exactly
   [state] + [var_v]/[var_t]: parameter slots are generation-cleared on
   every dispatch, loop counters are reset by ITER_RESET before each
   loop, and the effect buffer is truncated at the start of each step. *)

let n_states prog = Array.length prog.state_names
let n_vars prog = Array.length prog.var_names
let state_name_of_id prog i = prog.state_names.(i)
let var_name_of_id prog i = prog.var_names.(i)
let var_id_of_name prog name = Hashtbl.find_opt prog.var_ids name

let state_id_of_name prog name =
  let n = Array.length prog.state_names in
  let rec find i =
    if i >= n then None
    else if String.equal prog.state_names.(i) name then Some i
    else find (i + 1)
  in
  find 0

let signal_id_of_name prog name = Hashtbl.find_opt prog.signal_ids name
let after_min_of prog s = prog.after_min.(s)
let state_id t = t.state
let set_state_id t i = t.state <- i

let read_var_id t i =
  let tag = Bytes.get t.var_t i in
  if tag = tag_unbound then None else Some (pack_value t.var_v.(i) tag)

let write_var_id t i value =
  match value with
  | None -> Bytes.set t.var_t i tag_unbound
  | Some v ->
    let x, tag = unpack_value v in
    t.var_v.(i) <- x;
    Bytes.set t.var_t i tag
