type value = V_int of int | V_bool of bool

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type expr =
  | Int of int
  | Bool of bool
  | Var of string
  | Param of string
  | Neg of expr
  | Not of expr
  | Bin of binop * expr * expr

type stmt =
  | Assign of string * expr
  | Send of { port : string; signal : string; args : expr list }
  | Compute of expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list

exception Type_error of string

let max_loop_iterations = 100_000

type env = (string, value) Hashtbl.t

let env_of_bindings bindings =
  let env = Hashtbl.create 16 in
  List.iter (fun (name, value) -> Hashtbl.replace env name value) bindings;
  env

let env_bindings env =
  Hashtbl.fold (fun name value acc -> (name, value) :: acc) env []
  |> List.sort compare

let lookup env name = Hashtbl.find_opt env name
let set env name value = Hashtbl.replace env name value

let type_error fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

let rec eval env ~params expr =
  match expr with
  | Int n -> V_int n
  | Bool b -> V_bool b
  | Var name -> (
    match Hashtbl.find_opt env name with
    | Some value -> value
    | None -> type_error "unbound variable %s" name)
  | Param name -> (
    match List.assoc_opt name params with
    | Some value -> value
    | None -> type_error "unbound signal parameter %s" name)
  | Neg e -> V_int (-eval_int env ~params e)
  | Not e -> V_bool (not (eval_bool env ~params e))
  | Bin (op, a, b) -> eval_bin env ~params op a b

(* Operand evaluation is explicitly left-to-right (OCaml's own operand
   order is unspecified and right-to-left in practice), so the error a
   failing expression raises is well-defined: the leftmost failing
   operand wins.  [Div]/[Mod] evaluate both operands before the
   divisor-zero check, like every other operator pair. *)
and eval_bin env ~params op a b =
  match op with
  | Add ->
    let x = eval_int env ~params a in
    V_int (x + eval_int env ~params b)
  | Sub ->
    let x = eval_int env ~params a in
    V_int (x - eval_int env ~params b)
  | Mul ->
    let x = eval_int env ~params a in
    V_int (x * eval_int env ~params b)
  | Div ->
    let x = eval_int env ~params a in
    let d = eval_int env ~params b in
    if d = 0 then type_error "division by zero";
    V_int (x / d)
  | Mod ->
    let x = eval_int env ~params a in
    let d = eval_int env ~params b in
    if d = 0 then type_error "modulo by zero";
    V_int (x mod d)
  | Eq ->
    let x = eval env ~params a in
    V_bool (x = eval env ~params b)
  | Ne ->
    let x = eval env ~params a in
    V_bool (x <> eval env ~params b)
  | Lt ->
    let x = eval_int env ~params a in
    V_bool (x < eval_int env ~params b)
  | Le ->
    let x = eval_int env ~params a in
    V_bool (x <= eval_int env ~params b)
  | Gt ->
    let x = eval_int env ~params a in
    V_bool (x > eval_int env ~params b)
  | Ge ->
    let x = eval_int env ~params a in
    V_bool (x >= eval_int env ~params b)
  | And -> V_bool (eval_bool env ~params a && eval_bool env ~params b)
  | Or -> V_bool (eval_bool env ~params a || eval_bool env ~params b)

and eval_int env ~params expr =
  match eval env ~params expr with
  | V_int n -> n
  | V_bool _ -> type_error "expected an integer"

and eval_bool env ~params expr =
  match eval env ~params expr with
  | V_bool b -> b
  | V_int _ -> type_error "expected a boolean"

type effect =
  | Eff_send of { port : string; signal : string; args : value list }
  | Eff_compute of int

let exec env ~params stmts =
  let effects = ref [] in
  let emit effect = effects := effect :: !effects in
  let rec run stmts = List.iter step stmts
  and step stmt =
    match stmt with
    | Assign (name, e) -> Hashtbl.replace env name (eval env ~params e)
    | Send { port; signal; args } ->
      let values = List.map (eval env ~params) args in
      emit (Eff_send { port; signal; args = values })
    | Compute e ->
      let cycles = eval_int env ~params e in
      if cycles < 0 then type_error "negative computation cost";
      if cycles > 0 then emit (Eff_compute cycles)
    | If (cond, then_, else_) ->
      if eval_bool env ~params cond then run then_ else run else_
    | While (cond, body) ->
      let rec loop count =
        if count > max_loop_iterations then
          type_error "loop exceeded %d iterations" max_loop_iterations;
        if eval_bool env ~params cond then begin
          run body;
          loop (count + 1)
        end
      in
      loop 0
  in
  run stmts;
  List.rev !effects

let pp_value fmt = function
  | V_int n -> Format.fprintf fmt "%d" n
  | V_bool b -> Format.fprintf fmt "%b" b

let binop_symbol = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"

let rec pp_expr fmt = function
  | Int n -> Format.fprintf fmt "%d" n
  | Bool b -> Format.fprintf fmt "%b" b
  | Var name -> Format.fprintf fmt "%s" name
  | Param name -> Format.fprintf fmt "$%s" name
  | Neg e -> Format.fprintf fmt "-(%a)" pp_expr e
  | Not e -> Format.fprintf fmt "!(%a)" pp_expr e
  | Bin (op, a, b) ->
    Format.fprintf fmt "(%a %s %a)" pp_expr a (binop_symbol op) pp_expr b

let rec pp_stmt fmt = function
  | Assign (name, e) -> Format.fprintf fmt "%s := %a" name pp_expr e
  | Send { port; signal; args } ->
    Format.fprintf fmt "%s!%s(%a)" port signal
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
         pp_expr)
      args
  | Compute e -> Format.fprintf fmt "compute(%a)" pp_expr e
  | If (cond, then_, else_) ->
    Format.fprintf fmt "if %a then {%a} else {%a}" pp_expr cond pp_block then_
      pp_block else_
  | While (cond, body) ->
    Format.fprintf fmt "while %a do {%a}" pp_expr cond pp_block body

and pp_block fmt stmts =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.fprintf fmt "; ")
    pp_stmt fmt stmts

let equal_value (a : value) (b : value) = a = b

(* Concise constructors.  Shadowing the arithmetic operators is local to
   users who open this module explicitly for building actions. *)
let i n = Int n
let b x = Bool x
let v name = Var name
let p name = Param name
let ( + ) a b = Bin (Add, a, b)
let ( - ) a b = Bin (Sub, a, b)
let ( * ) a b = Bin (Mul, a, b)
let ( / ) a b = Bin (Div, a, b)
let ( mod ) a b = Bin (Mod, a, b)
let ( = ) a b = Bin (Eq, a, b)
let ( <> ) a b = Bin (Ne, a, b)
let ( < ) a b = Bin (Lt, a, b)
let ( <= ) a b = Bin (Le, a, b)
let ( > ) a b = Bin (Gt, a, b)
let ( >= ) a b = Bin (Ge, a, b)
let ( && ) a b = Bin (And, a, b)
let ( || ) a b = Bin (Or, a, b)
let assign name e = Assign (name, e)
let send ?(args = []) ~port signal = Send { port; signal; args }
let compute e = Compute e
