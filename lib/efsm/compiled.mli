(** Compiled EFSM engine.

    A {!Machine.t} is compiled once ({!compile}) into integer-indexed
    dispatch tables: interned states/signals/variables/parameters,
    per-(state, signal) candidate transition arrays in declaration
    order, and guards/actions flattened into a small stack bytecode
    executed over preallocated arrays.  An instance ({!t}) then steps
    without allocating on the hot path, except for the [Action.effect]
    lists the API is obliged to return.

    Observable behaviour is bit-identical to {!Interp} — same firing
    choices, same effect order, same [Action.Type_error] messages in the
    same evaluation order, same loop/completion bounds.  The
    differential suite (test/test_sim_compiled.ml) enforces this under
    fuzzing; a single compiled {!program} can be shared by many
    instances (one per process in a network). *)

type program
(** Immutable compiled form of one machine; shareable across instances. *)

type t
(** Running instance: current state id, variable slots, parameter slots. *)

val compile : Machine.t -> program
(** Validate nothing (callers run {!Machine.check} first, like they do
    for {!Interp.create}) and flatten the machine.  O(states x signals +
    code size); call once per machine, not per instance. *)

val create : program -> t
(** Fresh instance in the initial state with initial variable values. *)

val of_machine : Machine.t -> t
(** [create (compile m)] — convenience for single-instance use. *)

val machine : t -> Machine.t
val program : t -> program
val state : t -> string
val variables : t -> (string * Action.value) list
val read_var : t -> string -> Action.value option

val dispatch :
  t -> signal:string -> args:(string * Action.value) list -> Interp.step
(** Same contract as {!Interp.dispatch}: first enabled [On_signal]
    transition in declaration order fires (exit, actions, entry, then
    chained completions); the event is discarded if none is enabled. *)

val fire_timer : t -> entered_state:string -> Interp.step
(** Same contract as {!Interp.fire_timer}: fires an enabled [After]
    transition whose delay equals the armed ({!timer_request}) delay,
    discarding stale timers. *)

val initial_entry : t -> Action.effect list
(** Same contract as {!Interp.initial_entry}. *)

val run_completions : t -> Action.effect list
(** Same contract as {!Interp.run_completions}. *)

val timer_request : t -> int option
(** Same contract as {!Interp.timer_request}. *)

(** {2 Allocation-free dispatch}

    The [Interp.step]-returning entry points above materialise the
    fired transition and the effect list per event — fine for tests
    and the model checker, measurable on the simulation hot path.  The
    [_id] variants below keep the outcome as a boolean and leave the
    effects in the instance's internal buffer, to be walked in place
    via {!effect_count} / {!effect_at}. *)

val signal_id : t -> string -> int
(** Dispatch-table id of [signal] in this machine, [-1] if the machine
    never listens for it.  Resolve once and reuse with {!dispatch_id} —
    this is the only string lookup on the id path. *)

val dispatch_id : t -> sid:int -> args:(string * Action.value) list -> bool
(** Same transition semantics as {!dispatch}, keyed by a {!signal_id}
    result ([sid = -1] discards).  Returns whether a transition fired;
    on [true] the effects are in the buffer until the next dispatch. *)

val fire_timer_id : t -> entered_state:string -> bool
(** Same transition semantics as {!fire_timer}, buffer-backed like
    {!dispatch_id}. *)

val effect_count : t -> int
(** Number of effects produced by the last fired [_id] dispatch. *)

val effect_at : t -> int -> Action.effect
(** The [i]th effect, in execution order; valid below {!effect_count}
    and only until the next dispatch on this instance. *)

val reset : t -> unit
(** Back to the initial state and initial variable values. *)

(** {2 Introspection and direct state access}

    Used by the model checker to encode global states as flat
    id-indexed vectors.  The persistent cross-step state of an instance
    is exactly its state id plus its variable slots — parameter slots,
    loop counters and the effect accumulator are per-step. *)

val n_states : program -> int
val n_vars : program -> int
val state_name_of_id : program -> int -> string
val var_name_of_id : program -> int -> string
val var_id_of_name : program -> string -> int option
val state_id_of_name : program -> string -> int option

val signal_id_of_name : program -> string -> int option
(** Consumed signals only; [None] means a dispatch of this signal is
    discarded without looking at the state. *)

val after_min_of : program -> int -> int
(** Earliest [After] delay out of the given state id, [-1] when the
    state has no timer transition (mirrors {!timer_request}). *)

val state_id : t -> int
val set_state_id : t -> int -> unit

val read_var_id : t -> int -> Action.value option
(** [None] = unbound slot. *)

val write_var_id : t -> int -> Action.value option -> unit
