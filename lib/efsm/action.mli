(** Action language for EFSM transitions.

    The paper models behaviour as "asynchronous communicating Extended
    Finite State Machines" whose transitions carry guards and actions in
    the UML 2.0 textual notation.  This module is our textual notation:
    integer/boolean expressions over machine variables and trigger
    parameters, plus statements for assignment, signal output and
    abstract computation cost. *)

type value = V_int of int | V_bool of bool

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type expr =
  | Int of int
  | Bool of bool
  | Var of string  (** machine variable *)
  | Param of string  (** parameter of the triggering signal *)
  | Neg of expr
  | Not of expr
  | Bin of binop * expr * expr

type stmt =
  | Assign of string * expr  (** [var := expr] *)
  | Send of { port : string; signal : string; args : expr list }
      (** emit a signal through a port of the owning class *)
  | Compute of expr
      (** consume an abstract amount of computation (cycles on the
          reference platform; scaled by the mapped processing element) *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
      (** bounded by {!max_loop_iterations}; exceeding it is an error *)

exception Type_error of string
(** Raised when evaluation meets a type mismatch, an unbound variable or
    parameter, a division by zero, or an overlong loop. *)

val max_loop_iterations : int
(** Safety bound on [While] loops (an EFSM action must terminate). *)

type env
(** Mutable variable environment of one machine instance. *)

val env_of_bindings : (string * value) list -> env
val env_bindings : env -> (string * value) list
val lookup : env -> string -> value option
val set : env -> string -> value -> unit

val eval : env -> params:(string * value) list -> expr -> value
(** Evaluate an expression.  Operands evaluate left-to-right, so when
    several subexpressions would fail the leftmost failure is the one
    reported; [Div]/[Mod] evaluate both operands before the
    divisor-zero check.  Raises {!Type_error}. *)

val eval_bool : env -> params:(string * value) list -> expr -> bool
val eval_int : env -> params:(string * value) list -> expr -> int

type effect =
  | Eff_send of { port : string; signal : string; args : value list }
  | Eff_compute of int

val exec :
  env -> params:(string * value) list -> stmt list -> effect list
(** Execute statements in order, mutating [env]; returns emitted effects
    in program order.  Raises {!Type_error}. *)

val pp_value : Format.formatter -> value -> unit
val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val equal_value : value -> value -> bool

(** Convenience constructors for building actions concisely. *)

val i : int -> expr
val b : bool -> expr
val v : string -> expr
val p : string -> expr
val ( + ) : expr -> expr -> expr
val ( - ) : expr -> expr -> expr
val ( * ) : expr -> expr -> expr
val ( / ) : expr -> expr -> expr
val ( mod ) : expr -> expr -> expr
val ( = ) : expr -> expr -> expr
val ( <> ) : expr -> expr -> expr
val ( < ) : expr -> expr -> expr
val ( <= ) : expr -> expr -> expr
val ( > ) : expr -> expr -> expr
val ( >= ) : expr -> expr -> expr
val ( && ) : expr -> expr -> expr
val ( || ) : expr -> expr -> expr
val assign : string -> expr -> stmt
val send : ?args:expr list -> port:string -> string -> stmt
val compute : expr -> stmt
