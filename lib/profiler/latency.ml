type stats = {
  matched : int;
  unmatched : int;
  min_ns : int64;
  mean_ns : float;
  max_ns : int64;
  p95_ns : int64;
}

let samples ~src_signal ~dst_signal trace =
  (* Outstanding source timestamps per tag, FIFO per tag so wrapped
     sequence numbers match their earliest occurrence. *)
  let outstanding : (int, int64 Queue.t) Hashtbl.t = Hashtbl.create 64 in
  let matched = ref [] in
  Sim.Trace.iter trace
    (fun event ->
      match event with
      | Sim.Trace.Signal { time; signal; tag; _ } when tag >= 0 ->
        if signal = src_signal then begin
          let queue =
            match Hashtbl.find_opt outstanding tag with
            | Some q -> q
            | None ->
              let q = Queue.create () in
              Hashtbl.replace outstanding tag q;
              q
          in
          Queue.push time queue
        end
        else if signal = dst_signal then begin
          match Hashtbl.find_opt outstanding tag with
          | Some queue when not (Queue.is_empty queue) ->
            let started = Queue.pop queue in
            matched := (tag, Int64.sub time started) :: !matched
          | Some _ | None -> ()
        end
      | Sim.Trace.Signal _ | Sim.Trace.Exec _ | Sim.Trace.State_change _
      | Sim.Trace.Discard _ | Sim.Trace.Fault _ | Sim.Trace.Retransmit _
      | Sim.Trace.Flow_hop _ ->
        ());
  List.rev !matched

let measure ~src_signal ~dst_signal trace =
  let pairs = samples ~src_signal ~dst_signal trace in
  (* Count the source events that never completed. *)
  let sources =
    Sim.Trace.fold trace 0 (fun acc event ->
        match event with
        | Sim.Trace.Signal { signal; tag; _ }
          when signal = src_signal && tag >= 0 ->
          acc + 1
        | _ -> acc)
  in
  match pairs with
  | [] -> None
  | pairs ->
    let latencies = List.map snd pairs in
    let matched = List.length latencies in
    let sorted = List.sort compare latencies in
    let total = List.fold_left Int64.add 0L latencies in
    let nth_percentile p =
      let index =
        min (matched - 1) (int_of_float (float_of_int matched *. p))
      in
      List.nth sorted index
    in
    Some
      {
        matched;
        unmatched = sources - matched;
        min_ns = List.nth sorted 0;
        mean_ns = Int64.to_float total /. float_of_int matched;
        max_ns = List.nth sorted (matched - 1);
        p95_ns = nth_percentile 0.95;
      }

let render ~label stats =
  Printf.sprintf
    "%s: %d matched (%d lost), min %.3f ms, mean %.3f ms, p95 %.3f ms, max \
     %.3f ms\n"
    label stats.matched stats.unmatched
    (Int64.to_float stats.min_ns /. 1e6)
    (stats.mean_ns /. 1e6)
    (Int64.to_float stats.p95_ns /. 1e6)
    (Int64.to_float stats.max_ns /. 1e6)
