(** End-to-end observability report over causal flows ({!Obs.Flow}).

    Extends the paper's Table 4 with the latency dimension: per
    traffic class (flows grouped by origin signal) the end-to-end
    delivery latency distribution, its decomposition into queueing /
    processing / transfer / retransmission stages, platform utilisation
    (PE busy share, ready-queue high-water marks, segment pressure) and
    the ARQ retry distribution.

    The report is built either {e live} — from the metric snapshot of a
    run whose runtime carried an enabled flow tracker — or by {e replay}
    from a saved simulation log: the [L] flow-hop lines alone carry
    enough information to rebuild the flow sections bit-identically
    ({!of_trace} feeds them back through a fresh {!Obs.Flow}). *)

type class_row = {
  origin : string;  (** the flow's birth signal — its traffic class *)
  terminal : string;  (** the delivered-into-environment signal *)
  delivered : int;
  mean_ns : float;
  p50_ns : int;
  p90_ns : int;
  p99_ns : int;
  max_ns : int;
}

type stage_row = {
  s_origin : string;
  s_stage : string;  (** {!Obs.Flow.stage_name} token *)
  hops : int;
  total_ns : int;
  s_mean_ns : float;
  s_p99_ns : int;
  s_max_ns : int;
}

type pe_row = {
  pe : string;
  busy_ns : int64;
  util_pct : float;  (** of the run duration; 0 when duration unknown *)
  peak_ready : int;  (** RTOS ready-queue high-water mark *)
}

type segment_row = {
  seg : string;
  seg_words : int64;
  seg_peak_waiting : int;  (** most requests ever queued on the segment *)
}

type retry_row = {
  r_signal : string;
  r_retries : int;
  r_max_attempt : int;
}

type t = {
  minted : int;
  completed : int;
  classes : class_row list;  (** sorted by (origin, terminal) *)
  stages : stage_row list;
      (** sorted by origin, stages in {!Obs.Flow.all_stages} order *)
  pes : pe_row list;  (** sorted by PE name; empty in replay mode *)
  segments : segment_row list;
  retries : retry_row list;  (** sorted by signal *)
  giveups : int;  (** ARQ transfers abandoned after max retries *)
  duration_ns : int64 option;
}

val of_snapshot :
  ?duration_ns:int64 ->
  ?pe_busy:(string * int64) list ->
  ?segments:(string * int64 * int) list ->
  ?pe_peaks:(string * int) list ->
  ?trace:Sim.Trace.t ->
  Obs.Metrics.snapshot ->
  t
(** Parse the [flow.*] histogram/counter families and the
    [sim.rtos.<pe>.queue_depth] gauge peaks out of a snapshot.
    [pe_busy] supplies busy time per PE
    ({!Codegen.Runtime.pe_busy_ns}), [segments] supplies
    [(name, words, peak waiting)] triples, [pe_peaks]
    ({!Codegen.Runtime.pe_queue_high_water}) overrides the gauge-derived
    ready-queue peaks with the scheduler's own high-water counters, and
    [trace] supplies the retransmission ([R]) and [arq_giveup] fault
    events for the retry section. *)

val of_trace : Sim.Trace.t -> t
(** Replay: rebuild the flow sections from the [L] lines of a saved log
    (platform rows stay empty — busy times are not in the log).  For a
    log produced by a flows-on run, the flow sections equal the live
    report's. *)

val render_text : t -> string
(** Deterministic fixed-width table rendering. *)

val render_json : t -> Obs.Json.t
(** Deterministic (alphabetical) key order. *)
