type window = {
  start_ns : int64;
  group_cycles : (string * int64) list;
  signals : int;
}

type t = {
  window_ns : int64;
  windows : window list;
}

let build groups ~window_ns trace =
  if window_ns <= 0L then invalid_arg "Profiler.Timeline.build: window size";
  let index time = Int64.to_int (Int64.div time window_ns) in
  let last_index =
    Sim.Trace.fold trace 0
      (fun acc event ->
        let time =
          match event with
          | Sim.Trace.Exec { time; _ }
          | Sim.Trace.Signal { time; _ }
          | Sim.Trace.State_change { time; _ }
          | Sim.Trace.Discard { time; _ }
          | Sim.Trace.Fault { time; _ }
          | Sim.Trace.Retransmit { time; _ }
          | Sim.Trace.Flow_hop { time; _ } ->
            time
        in
        max acc (index time))
  in
  let cycle_tables = Array.init (last_index + 1) (fun _ -> Hashtbl.create 8) in
  let signal_counts = Array.make (last_index + 1) 0 in
  Sim.Trace.iter trace
    (fun event ->
      match event with
      | Sim.Trace.Exec { time; process; cycles } ->
        let group = Groups.group_of groups process in
        if group <> Groups.environment_group then begin
          let table = cycle_tables.(index time) in
          let current = Option.value ~default:0L (Hashtbl.find_opt table group) in
          Hashtbl.replace table group (Int64.add current cycles)
        end
      | Sim.Trace.Signal { time; _ } ->
        signal_counts.(index time) <- signal_counts.(index time) + 1
      | Sim.Trace.State_change _ | Sim.Trace.Discard _ | Sim.Trace.Fault _
      | Sim.Trace.Retransmit _ | Sim.Trace.Flow_hop _ ->
        ());
  let windows =
    List.init (last_index + 1) (fun i ->
        {
          start_ns = Int64.mul (Int64.of_int i) window_ns;
          group_cycles =
            Hashtbl.fold (fun g c acc -> (g, c) :: acc) cycle_tables.(i) []
            |> List.sort compare;
          signals = signal_counts.(i);
        })
  in
  { window_ns; windows }

let group_series t group =
  List.map
    (fun w -> Option.value ~default:0L (List.assoc_opt group w.group_cycles))
    t.windows

let peak t group =
  List.fold_left
    (fun acc w ->
      let cycles = Option.value ~default:0L (List.assoc_opt group w.group_cycles) in
      match acc with
      | Some (_, best) when best >= cycles -> acc
      | Some _ | None -> if cycles > 0L then Some (w.start_ns, cycles) else acc)
    None t.windows

let render t =
  let groups =
    List.sort_uniq compare
      (List.concat_map (fun w -> List.map fst w.group_cycles) t.windows)
  in
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "Timeline (%.3f ms windows, application cycles per group)"
    (Int64.to_float t.window_ns /. 1e6);
  line "  %10s %s %8s" "t(ms)"
    (String.concat ""
       (List.map (fun g -> Printf.sprintf "%12s" g) groups))
    "signals";
  List.iter
    (fun w ->
      line "  %10.3f %s %8d"
        (Int64.to_float w.start_ns /. 1e6)
        (String.concat ""
           (List.map
              (fun g ->
                Printf.sprintf "%12Ld"
                  (Option.value ~default:0L (List.assoc_opt g w.group_cycles)))
              groups))
        w.signals)
    t.windows;
  Buffer.contents buf
