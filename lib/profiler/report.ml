type t = {
  group_cycles : (string * int64) list;
  total_cycles : int64;
  matrix : ((string * string) * int) list;
  process_transfers : ((string * string) * int) list;
  process_cycles : (string * int64) list;
  discarded : (string * int) list;
}

let build groups trace =
  let process_cycles = Sim.Trace.total_cycles trace in
  let group_table = Hashtbl.create 8 in
  List.iter
    (fun g -> Hashtbl.replace group_table g 0L)
    (Groups.groups groups);
  List.iter
    (fun (process, cycles) ->
      let group = Groups.group_of groups process in
      if group <> Groups.environment_group then
        let current =
          Option.value ~default:0L (Hashtbl.find_opt group_table group)
        in
        Hashtbl.replace group_table group (Int64.add current cycles))
    process_cycles;
  let group_cycles =
    Hashtbl.fold (fun g c acc -> (g, c) :: acc) group_table []
    |> List.sort (fun (ga, a) (gb, b) ->
           match Int64.compare b a with 0 -> compare ga gb | n -> n)
  in
  let group_cycles =
    group_cycles @ [ (Groups.environment_group, 0L) ]
  in
  let total_cycles =
    List.fold_left (fun acc (_, c) -> Int64.add acc c) 0L group_cycles
  in
  let process_transfers = Sim.Trace.signal_counts trace in
  let matrix_table = Hashtbl.create 16 in
  List.iter
    (fun ((sender, receiver), count) ->
      let key = (Groups.group_of groups sender, Groups.group_of groups receiver) in
      let current = Option.value ~default:0 (Hashtbl.find_opt matrix_table key) in
      Hashtbl.replace matrix_table key (current + count))
    process_transfers;
  let matrix =
    Hashtbl.fold (fun key count acc -> (key, count) :: acc) matrix_table []
    |> List.sort compare
  in
  let discarded = Sim.Trace.discard_counts trace in
  {
    group_cycles;
    total_cycles;
    matrix;
    process_transfers;
    process_cycles;
    discarded;
  }

(* The report's group cycle totals are derived from the trace; the
   runtime counts the same executed cycles directly into the metrics
   registry.  Equality ties the two telemetry paths together — a
   mismatch means events were lost or double-counted. *)
let cross_check t snapshot =
  match Obs.Metrics.counter_value snapshot "app.exec_cycles_total" with
  | None -> Error "metrics snapshot has no app.exec_cycles_total counter"
  | Some counted ->
    if Int64.of_int counted = t.total_cycles then Ok ()
    else
      Error
        (Printf.sprintf
           "report totals %Ld cycles but the runtime counted %d" t.total_cycles
           counted)

let proportion t group =
  if t.total_cycles = 0L then 0.0
  else
    let cycles =
      Option.value ~default:0L (List.assoc_opt group t.group_cycles)
    in
    Int64.to_float cycles /. Int64.to_float t.total_cycles

let signals_between t ~sender ~receiver =
  Option.value ~default:0 (List.assoc_opt (sender, receiver) t.matrix)

(* Display names follow the paper: part "group1" renders as "Group1". *)
let display name =
  if name = "" then name
  else String.make 1 (Char.uppercase_ascii name.[0]) ^ String.sub name 1 (String.length name - 1)

let render t =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "Profiling report";
  line "";
  line "(a) %-14s %22s %11s" "Process group" "Total execution time" "Proportion";
  List.iter
    (fun (group, cycles) ->
      line "    %-14s %15Ld cycles %9.1f %%" (display group) cycles
        (100.0 *. proportion t group))
    t.group_cycles;
  line "";
  line "(b) Number of signals between groups";
  let names = List.map fst t.group_cycles in
  let cell = 13 in
  line "    %-16s%s" "Sender/Receiver"
    (String.concat ""
       (List.map (fun g -> Printf.sprintf "%*s" cell (display g)) names));
  List.iter
    (fun sender ->
      line "    %-16s%s" (display sender)
        (String.concat ""
           (List.map
              (fun receiver ->
                Printf.sprintf "%*d" cell (signals_between t ~sender ~receiver))
              names)))
    names;
  Buffer.contents buf

let render_transfers t =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "Transfers between individual application processes";
  List.iter
    (fun ((sender, receiver), count) ->
      line "  %-40s -> %-40s %8d" sender receiver count)
    t.process_transfers;
  line "";
  line "Execution per process";
  List.iter
    (fun (process, cycles) -> line "  %-50s %12Ld cycles" process cycles)
    t.process_cycles;
  (match t.discarded with
  | [] -> ()
  | discarded ->
    line "";
    line "Discarded signals";
    List.iter
      (fun (process, count) -> line "  %-50s %8d" process count)
      discarded);
  Buffer.contents buf

let render_fault_section (s : Fault.Stats.t) =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun x -> Buffer.add_string buf (x ^ "\n")) fmt in
  line "Fault injection & recovery";
  line "";
  line "(a) Injected faults                        %8d total" (Fault.Stats.injected s);
  line "    %-38s %8d" "hibi drops" s.Fault.Stats.hibi_drops;
  line "    %-38s %8d" "hibi corruptions" s.Fault.Stats.hibi_corrupts;
  line "    %-38s %8d" "hibi stalls" s.Fault.Stats.hibi_stalls;
  line "    %-38s %8d" "pe crashes" s.Fault.Stats.pe_crashes;
  line "    %-38s %8d" "pe slowdowns" s.Fault.Stats.pe_slowdowns;
  line "    %-38s %8d" "signal losses" s.Fault.Stats.signal_losses;
  line "    %-38s %8d" "signal duplications" s.Fault.Stats.signal_dups;
  line "    %-38s %8d" "channel losses" s.Fault.Stats.chan_losses;
  line "    %-38s %8d" "interference bursts" s.Fault.Stats.chan_bursts;
  line "    %-38s %8d" "terminal crashes" s.Fault.Stats.term_crashes;
  line "";
  line "(b) Detection                              %8d total" (Fault.Stats.detected s);
  line "    %-38s %8d" "crc rejects (corruption caught)" s.Fault.Stats.crc_rejects;
  line "    %-38s %8d" "crc residual (delivered corrupt)" s.Fault.Stats.crc_residual;
  line "    %-38s %8d" "watchdog detections" s.Fault.Stats.watchdog_detections;
  line "";
  line "(c) Recovery                               %8d total" (Fault.Stats.recovered s);
  line "    %-38s %8d" "retransmissions sent" s.Fault.Stats.retransmits;
  line "    %-38s %8d" "messages recovered by arq" s.Fault.Stats.arq_acked;
  line "    %-38s %8d" "duplicates suppressed" s.Fault.Stats.arq_duplicates;
  line "    %-38s %8d" "messages given up (arq budget)" s.Fault.Stats.arq_giveups;
  line "    %-38s %8d" "processes re-mapped" s.Fault.Stats.remapped_processes;
  (match Fault.Stats.latency_percentiles s with
  | None -> line "    %-38s %8s" "recovery latency" "n/a"
  | Some (p50, p95, max_l) ->
    line "    %-38s p50 %Ld ns  p95 %Ld ns  max %Ld ns" "recovery latency" p50
      p95 max_l);
  Buffer.contents buf
