type class_row = {
  origin : string;
  terminal : string;
  delivered : int;
  mean_ns : float;
  p50_ns : int;
  p90_ns : int;
  p99_ns : int;
  max_ns : int;
}

type stage_row = {
  s_origin : string;
  s_stage : string;
  hops : int;
  total_ns : int;
  s_mean_ns : float;
  s_p99_ns : int;
  s_max_ns : int;
}

type pe_row = {
  pe : string;
  busy_ns : int64;
  util_pct : float;
  peak_ready : int;
}

type segment_row = { seg : string; seg_words : int64; seg_peak_waiting : int }
type retry_row = { r_signal : string; r_retries : int; r_max_attempt : int }

type t = {
  minted : int;
  completed : int;
  classes : class_row list;
  stages : stage_row list;
  pes : pe_row list;
  segments : segment_row list;
  retries : retry_row list;
  giveups : int;
  duration_ns : int64 option;
}

let stage_rank stage =
  let rec find i = function
    | [] -> List.length Obs.Flow.all_stages
    | s :: rest -> if Obs.Flow.stage_name s = stage then i else find (i + 1) rest
  in
  find 0 Obs.Flow.all_stages

let class_of_hdr ~origin ~terminal (s : Obs.Histogram.snapshot) =
  {
    origin;
    terminal;
    delivered = s.Obs.Histogram.s_count;
    mean_ns = Obs.Histogram.mean s;
    p50_ns = Obs.Histogram.quantile s 50.0;
    p90_ns = Obs.Histogram.quantile s 90.0;
    p99_ns = Obs.Histogram.quantile s 99.0;
    max_ns = s.Obs.Histogram.s_max;
  }

let stage_of_hdr ~origin ~stage (s : Obs.Histogram.snapshot) =
  {
    s_origin = origin;
    s_stage = stage;
    hops = s.Obs.Histogram.s_count;
    total_ns = s.Obs.Histogram.s_sum;
    s_mean_ns = Obs.Histogram.mean s;
    s_p99_ns = Obs.Histogram.quantile s 99.0;
    s_max_ns = s.Obs.Histogram.s_max;
  }

let retry_rows trace =
  match trace with
  | None -> ([], 0)
  | Some trace ->
    let table = Hashtbl.create 8 in
    let giveups = ref 0 in
    Sim.Trace.iter trace
      (fun event ->
        match event with
        | Sim.Trace.Retransmit { signal; attempt; _ } ->
          let retries, max_attempt =
            Option.value ~default:(0, 0) (Hashtbl.find_opt table signal)
          in
          Hashtbl.replace table signal (retries + 1, max max_attempt attempt)
        | Sim.Trace.Fault { kind = "arq_giveup"; _ } -> incr giveups
        | _ -> ());
    let rows =
      Hashtbl.fold
        (fun signal (retries, max_attempt) acc ->
          { r_signal = signal; r_retries = retries; r_max_attempt = max_attempt }
          :: acc)
        table []
      |> List.sort (fun a b -> String.compare a.r_signal b.r_signal)
    in
    (rows, !giveups)

let of_snapshot ?duration_ns ?(pe_busy = []) ?(segments = []) ?pe_peaks ?trace
    snapshot =
  let minted = ref 0 and completed = ref 0 in
  let classes = ref [] and stages = ref [] in
  let peaks = Hashtbl.create 8 in
  List.iter
    (fun (name, value) ->
      match (String.split_on_char '.' name, value) with
      | [ "flow"; "minted" ], Obs.Metrics.Counter n -> minted := n
      | [ "flow"; "completed" ], Obs.Metrics.Counter n -> completed := n
      | [ "flow"; origin; "e2e"; terminal ], Obs.Metrics.Hdr s ->
        classes := class_of_hdr ~origin ~terminal s :: !classes
      | [ "flow"; origin; "stage"; stage ], Obs.Metrics.Hdr s ->
        stages := stage_of_hdr ~origin ~stage s :: !stages
      | ( [ "sim"; "rtos"; pe; "queue_depth" ],
          Obs.Metrics.Gauge { peak_value; _ } ) ->
        Hashtbl.replace peaks pe peak_value
      | _ -> ())
    snapshot;
  (* A live runtime reads ready-queue peaks straight off the scheduler
     rings (maintained unconditionally); the gauge-derived peaks above
     only serve snapshots with no runtime behind them. *)
  (match pe_peaks with
  | None -> ()
  | Some rows ->
    Hashtbl.reset peaks;
    List.iter (fun (pe, peak) -> Hashtbl.replace peaks pe peak) rows);
  let classes =
    List.sort
      (fun a b ->
        match String.compare a.origin b.origin with
        | 0 -> String.compare a.terminal b.terminal
        | c -> c)
      !classes
  in
  let stages =
    List.sort
      (fun a b ->
        match String.compare a.s_origin b.s_origin with
        | 0 -> compare (stage_rank a.s_stage) (stage_rank b.s_stage)
        | c -> c)
      !stages
  in
  let pe_names =
    List.sort_uniq String.compare
      (List.map fst pe_busy @ Hashtbl.fold (fun pe _ acc -> pe :: acc) peaks [])
  in
  let pes =
    (* Replay has neither busy times nor gauges: no platform rows. *)
    if pe_busy = [] then []
    else
      List.map
        (fun pe ->
          let busy_ns =
            Option.value ~default:0L (List.assoc_opt pe pe_busy)
          in
          let util_pct =
            match duration_ns with
            | Some d when d > 0L ->
              100.0 *. Int64.to_float busy_ns /. Int64.to_float d
            | Some _ | None -> 0.0
          in
          {
            pe;
            busy_ns;
            util_pct;
            peak_ready = Option.value ~default:0 (Hashtbl.find_opt peaks pe);
          })
        pe_names
  in
  let segments =
    List.map
      (fun (seg, seg_words, seg_peak_waiting) ->
        { seg; seg_words; seg_peak_waiting })
      (List.sort compare segments)
  in
  let retries, giveups = retry_rows trace in
  {
    minted = !minted;
    completed = !completed;
    classes;
    stages;
    pes;
    segments;
    retries;
    giveups;
    duration_ns;
  }

let of_trace trace =
  let metrics = Obs.Metrics.create () in
  let flows = Obs.Flow.create ~metrics () in
  Sim.Trace.iter trace
    (fun event ->
      match event with
      | Sim.Trace.Flow_hop { time; flow; stage = "born"; where_; _ } ->
        Obs.Flow.note_born flows ~flow ~now:time ~origin:where_
      | Sim.Trace.Flow_hop { time; flow; stage = "end"; where_; _ } ->
        ignore (Obs.Flow.complete flows ~flow ~now:time ~terminal:where_)
      | Sim.Trace.Flow_hop { flow; stage; dur; _ } -> (
        match Obs.Flow.stage_of_name stage with
        | Some s -> Obs.Flow.hop flows ~flow ~stage:s ~dur_ns:dur
        | None -> ())
      | _ -> ());
  of_snapshot ~trace (Obs.Metrics.snapshot metrics)

let render_text t =
  let b = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "Causal flow report";
  line "==================";
  line "";
  line "flows minted    %6d" t.minted;
  line "flows completed %6d" t.completed;
  line "";
  line "Per-class end-to-end latency [ns]";
  line "  %-36s %9s %11s %9s %9s %9s %9s" "class" "delivered" "mean" "p50"
    "p90" "p99" "max";
  if t.classes = [] then line "  (none)"
  else
    List.iter
      (fun c ->
        line "  %-36s %9d %11.1f %9d %9d %9d %9d"
          (c.origin ^ " -> " ^ c.terminal)
          c.delivered c.mean_ns c.p50_ns c.p90_ns c.p99_ns c.max_ns)
      t.classes;
  line "";
  line "Stage decomposition [ns/hop]";
  line "  %-20s %-10s %7s %11s %11s %9s %9s" "class" "stage" "hops" "total"
    "mean" "p99" "max";
  if t.stages = [] then line "  (none)"
  else
    List.iter
      (fun s ->
        line "  %-20s %-10s %7d %11d %11.1f %9d %9d" s.s_origin s.s_stage
          s.hops s.total_ns s.s_mean_ns s.s_p99_ns s.s_max_ns)
      t.stages;
  if t.pes <> [] || t.segments <> [] then begin
    line "";
    line "Platform";
    if t.pes <> [] then begin
      line "  %-16s %13s %7s %11s" "PE" "busy [ns]" "util%" "peak ready";
      List.iter
        (fun p ->
          line "  %-16s %13Ld %6.1f%% %11d" p.pe p.busy_ns p.util_pct
            p.peak_ready)
        t.pes
    end;
    if t.segments <> [] then begin
      line "  %-16s %13s %19s" "segment" "words" "peak waiting";
      List.iter
        (fun s ->
          line "  %-16s %13Ld %19d" s.seg s.seg_words s.seg_peak_waiting)
        t.segments
    end
  end;
  line "";
  line "ARQ retransmissions";
  if t.retries = [] && t.giveups = 0 then line "  (none)"
  else begin
    line "  %-20s %8s %12s" "signal" "retries" "max attempt";
    List.iter
      (fun r -> line "  %-20s %8d %12d" r.r_signal r.r_retries r.r_max_attempt)
      t.retries;
    line "  give-ups: %d" t.giveups
  end;
  Buffer.contents b

let render_json t =
  let open Obs.Json in
  let class_row c =
    Obj
      [
        ("delivered", Int c.delivered);
        ("max_ns", Int c.max_ns);
        ("mean_ns", Float c.mean_ns);
        ("origin", Str c.origin);
        ("p50_ns", Int c.p50_ns);
        ("p90_ns", Int c.p90_ns);
        ("p99_ns", Int c.p99_ns);
        ("terminal", Str c.terminal);
      ]
  in
  let stage_row s =
    Obj
      [
        ("hops", Int s.hops);
        ("max_ns", Int s.s_max_ns);
        ("mean_ns", Float s.s_mean_ns);
        ("origin", Str s.s_origin);
        ("p99_ns", Int s.s_p99_ns);
        ("stage", Str s.s_stage);
        ("total_ns", Int s.total_ns);
      ]
  in
  let pe_row p =
    Obj
      [
        ("busy_ns", Int (Int64.to_int p.busy_ns));
        ("pe", Str p.pe);
        ("peak_ready", Int p.peak_ready);
        ("util_pct", Float p.util_pct);
      ]
  in
  let segment_row s =
    Obj
      [
        ("peak_waiting", Int s.seg_peak_waiting);
        ("segment", Str s.seg);
        ("words", Int (Int64.to_int s.seg_words));
      ]
  in
  let retry_row r =
    Obj
      [
        ("max_attempt", Int r.r_max_attempt);
        ("retries", Int r.r_retries);
        ("signal", Str r.r_signal);
      ]
  in
  Obj
    [
      ("classes", List (List.map class_row t.classes));
      ("completed", Int t.completed);
      ( "duration_ns",
        match t.duration_ns with
        | Some d -> Int (Int64.to_int d)
        | None -> Null );
      ("giveups", Int t.giveups);
      ("minted", Int t.minted);
      ("pes", List (List.map pe_row t.pes));
      ("retries", List (List.map retry_row t.retries));
      ("segments", List (List.map segment_row t.segments));
      ("stages", List (List.map stage_row t.stages));
    ]
