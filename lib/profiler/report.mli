(** Stage 3 of the profiling tool: combine the simulation log with the
    process-group information into the profiling report of the paper's
    Table 4.

    Part (a) gives the total execution time per process group and its
    proportion of all application cycles (the Environment pseudo group
    is reported with 0 cycles, as in the paper — environment execution
    is not application work).  Part (b) is the matrix of signal counts
    between groups, Environment row/column included.  Per-process
    transfer counts ("other metrics ... are also available") are kept
    too. *)

type t = {
  group_cycles : (string * int64) list;
      (** per group, descending; Environment last with 0 *)
  total_cycles : int64;
  matrix : ((string * string) * int) list;  (** (sender group, receiver group) *)
  process_transfers : ((string * string) * int) list;
  process_cycles : (string * int64) list;
  discarded : (string * int) list;  (** discarded signals per process *)
}

val build : Groups.t -> Sim.Trace.t -> t

val cross_check : t -> Obs.Metrics.snapshot -> (unit, string) result
(** Verify the trace-derived group cycle totals against the runtime's
    [app.exec_cycles_total] counter (recorded independently of the
    trace).  [Error] describes the discrepancy. *)

val proportion : t -> string -> float
(** Share of a group in total application cycles, in [0, 1]. *)

val signals_between : t -> sender:string -> receiver:string -> int

val render : t -> string
(** The Table 4 layout: part (a) then part (b). *)

val render_transfers : t -> string
(** The per-process metrics table. *)

val render_fault_section : Fault.Stats.t -> string
(** The report's fault section: injected vs detected vs recovered
    counts, retransmissions, residual undetected corruptions, and
    watchdog recovery-latency percentiles.  Only rendered for runs with
    an active fault plan. *)
