(* Cone-of-influence relevance analysis.

   A variable is *control-relevant* when its value can (transitively)
   reach a transition guard or an If/While condition — in its own
   machine through assignments, or across machines through send
   arguments that bind to parameters the receiver's guards read.
   Everything else is a dead counter as far as reachability of control
   states, deadlock and queue contents are concerned, so the explorer
   masks it out of the visited-set key: two concrete states differing
   only in irrelevant slots merge into one representative.  Execution
   itself stays fully concrete — the representative's values keep
   flowing — so the abstraction only ever merges, never invents,
   behaviour.

   The analysis is a fixpoint over (instance, variable) and (instance,
   parameter name) relevance:
     - seeds: names read by any guard or If/While condition;
     - in-machine: [x := e] with x relevant makes every name in e
       relevant;
     - cross-machine: a send whose argument position binds (by the
       signal's positional parameter names) to a relevant parameter of
       some receiving instance makes the argument's names relevant in
       the sender.

   Environment-injected signals carry the canonical zero payload during
   exploration; when such a signal has a control-relevant parameter at
   its target the verdict is only valid for that payload, and the
   checker surfaces it as a caveat ({!Net.env_input.ei_guard_read}). *)

type t = {
  var_relevant : bool array array;  (** per instance, per compiled var id *)
  arg_relevant : bool array array array;
      (** [inst].(gsig): per argument position, relevant at that
          receiver — masks queued message payloads in the state key *)
  env_caveats : (int * int) list;  (** (instance, gsig) with relevant params *)
}

let all_relevant (net : Net.t) =
  {
    var_relevant =
      Array.map
        (fun (i : Net.inst) ->
          Array.make (Efsm.Compiled.n_vars i.Net.prog) true)
        net.Net.insts;
    arg_relevant =
      Array.map
        (fun (_ : Net.inst) ->
          Array.map
            (fun (s : Net.sig_info) ->
              Array.make (Array.length s.Net.sg_params) true)
            net.Net.sigs)
        net.Net.insts;
    env_caveats = [];
  }

(* ---- statement walking ------------------------------------------------ *)

(* Conditions (guards, If/While) and assignments of one instance. *)
let rec walk_stmts ~cond ~assign stmts =
  List.iter
    (fun stmt ->
      match stmt with
      | Efsm.Action.Assign (x, e) -> assign x e
      | Efsm.Action.Compute _ | Efsm.Action.Send _ -> ()
      | Efsm.Action.If (c, t, e) ->
        cond c;
        walk_stmts ~cond ~assign t;
        walk_stmts ~cond ~assign e
      | Efsm.Action.While (c, body) ->
        cond c;
        walk_stmts ~cond ~assign body)
    stmts

let machine_blocks (m : Efsm.Machine.t) =
  List.map (fun (tr : Efsm.Machine.transition) -> tr.Efsm.Machine.actions)
    m.Efsm.Machine.transitions
  @ List.map snd m.Efsm.Machine.entry_actions
  @ List.map snd m.Efsm.Machine.exit_actions

let analyse (net : Net.t) =
  let n = Net.n_insts net in
  (* relevance sets keyed by name, converted to id masks at the end *)
  let rvars = Array.init n (fun _ -> Hashtbl.create 16) in
  let rparams = Array.init n (fun _ -> Hashtbl.create 16) in
  let changed = ref false in
  let add tbl name =
    if not (Hashtbl.mem tbl name) then begin
      Hashtbl.replace tbl name ();
      changed := true
    end
  in
  let mark ix e =
    let vars = Hashtbl.create 4 and params = Hashtbl.create 4 in
    Net.expr_names vars params e;
    Hashtbl.iter (fun v () -> add rvars.(ix) v) vars;
    Hashtbl.iter (fun p () -> add rparams.(ix) p) params
  in
  (* seeds: guards and branch conditions *)
  Array.iter
    (fun (inst : Net.inst) ->
      let ix = inst.Net.ix in
      List.iter
        (fun (tr : Efsm.Machine.transition) ->
          Option.iter (mark ix) tr.Efsm.Machine.guard)
        inst.Net.machine.Efsm.Machine.transitions;
      List.iter
        (walk_stmts ~cond:(mark ix) ~assign:(fun _ _ -> ()))
        (machine_blocks inst.Net.machine))
    net.Net.insts;
  (* fixpoint: assignment and send-argument propagation *)
  let propagate () =
    Array.iter
      (fun (inst : Net.inst) ->
        let ix = inst.Net.ix in
        List.iter
          (walk_stmts
             ~cond:(fun _ -> ())
             ~assign:(fun x e ->
               if Hashtbl.mem rvars.(ix) x then mark ix e))
          (machine_blocks inst.Net.machine);
        List.iter
          (fun (port, signal, args) ->
            match Net.find_route inst ~port ~signal with
            | None -> ()
            | Some r ->
              let params = net.Net.sigs.(r.Net.rt_gsig).Net.sg_params in
              List.iteri
                (fun k arg ->
                  if k < Array.length params then
                    let pname = fst params.(k) in
                    let relevant_somewhere =
                      Array.exists
                        (fun j -> Hashtbl.mem rparams.(j) pname)
                        r.Net.rt_dests
                    in
                    if relevant_somewhere then mark ix arg)
                args)
          (Net.machine_send_sites inst.Net.machine))
      net.Net.insts
  in
  changed := true;
  while !changed do
    changed := false;
    propagate ()
  done;
  let var_relevant =
    Array.map
      (fun (inst : Net.inst) ->
        Array.init (Efsm.Compiled.n_vars inst.Net.prog) (fun id ->
            Hashtbl.mem
              rvars.(inst.Net.ix)
              (Efsm.Compiled.var_name_of_id inst.Net.prog id)))
      net.Net.insts
  in
  let arg_relevant =
    Array.map
      (fun (inst : Net.inst) ->
        Array.map
          (fun (s : Net.sig_info) ->
            Array.map
              (fun (pname, _) -> Hashtbl.mem rparams.(inst.Net.ix) pname)
              s.Net.sg_params)
          net.Net.sigs)
      net.Net.insts
  in
  let env_caveats =
    Array.to_list net.Net.env_inputs
    |> List.filter_map (fun (e : Net.env_input) ->
           let mask = arg_relevant.(e.Net.ei_target).(e.Net.ei_gsig) in
           if Array.exists Fun.id mask then
             Some (e.Net.ei_target, e.Net.ei_gsig)
           else None)
    |> List.sort_uniq compare
  in
  { var_relevant; arg_relevant; env_caveats }

(* Refresh the env-input caveat flags from an analysis. *)
let apply_caveats (net : Net.t) t =
  {
    net with
    Net.env_inputs =
      Array.map
        (fun (e : Net.env_input) ->
          {
            e with
            Net.ei_guard_read =
              List.mem (e.Net.ei_target, e.Net.ei_gsig) t.env_caveats;
          })
        net.Net.env_inputs;
  }
