(* Replayable counterexamples.

   A violation found by {!Explore} is a schedule: the exact sequence of
   global steps (environment injections, queue-head deliveries, timer
   fires) from the initial state.  This module re-executes a schedule
   and renders it in the {!Sim.Trace} line format, so `tutflow
   simulate`-family tooling can consume it:

   {v
     F 0 mc_init network cap=<queue capacity>
     F <t> mc_inject <instance> <signal>      + S <t> env <instance> ...
     F <t> mc_deliver <instance> <signal>     + E/S effect lines, then T or D
     F <t> mc_timer <instance> <delay_ns>     + E/S effect lines, then T or D
     F <t> mc_deadlock <member,member,...> -      (final verdict marker)
     F <t> mc_overflow <instance> <signal>        (at the overflowing step)
   v}

   Simulated time is the step ordinal, so every event of one global
   step shares a timestamp.  Replay ({!replay}) extracts the schedule
   back out of the [mc_*] markers, re-executes it under either engine
   (the reference interpreter or the compiled bytecode VM), re-renders,
   and compares byte for byte — the emitted trace is its own oracle,
   and the verdict marker is recomputed, never copied. *)

type verdict =
  | V_none
  | V_deadlock of string list  (** blocked instance paths *)
  | V_overflow of string * string  (** overflowing instance, signal *)

type summary = {
  s_steps : int;
  s_verdict : verdict;
  s_final : (string * string * int) list;
      (** per instance: (path, control state, queue length) *)
}

type qmsg = { q_gsig : int; q_args : Efsm.Action.value array }

exception Replay_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Replay_error s)) fmt

(* ---- schedule execution with trace emission --------------------------- *)

let emit (net : Net.t) ~engine ~capacity ~(schedule : Explore.step list) =
  let trace = Sim.Trace.create () in
  let execs =
    Array.map (fun inst -> Net.make_exec engine inst) net.Net.insts
  in
  let queues = Array.make (Net.n_insts net) ([] : qmsg list) in
  let overflowed = ref None in
  let record e = Sim.Trace.record trace e in
  let enqueue ~time ~sender dest gsig args =
    let path = net.Net.insts.(dest).Net.path in
    record
      (Sim.Trace.Signal
         {
           time;
           sender;
           receiver = path;
           signal = Net.sig_name net gsig;
           words = Net.sig_words net gsig;
           tag = -1;
         });
    if List.length queues.(dest) >= capacity then begin
      record
        (Sim.Trace.Fault
           {
             time;
             kind = "mc_overflow";
             target = path;
             info = Net.sig_name net gsig;
           });
      overflowed := Some (path, Net.sig_name net gsig)
    end
    else queues.(dest) <- queues.(dest) @ [ { q_gsig = gsig; q_args = args } ]
  in
  let route_effects ~time (inst : Net.inst) effects =
    List.iter
      (fun effect ->
        if !overflowed = None then
          match effect with
          | Efsm.Action.Eff_compute cycles ->
            record
              (Sim.Trace.Exec
                 {
                   time;
                   process = inst.Net.path;
                   cycles = Int64.of_int cycles;
                 })
          | Efsm.Action.Eff_send { port; signal; args } -> (
            match Net.find_route inst ~port ~signal with
            | None -> ()
            | Some r ->
              if Array.length r.Net.rt_dests = 0 then begin
                if r.Net.rt_env then
                  record
                    (Sim.Trace.Signal
                       {
                         time;
                         sender = inst.Net.path;
                         receiver = "env";
                         signal;
                         words = Net.sig_words net r.Net.rt_gsig;
                         tag = -1;
                       })
              end
              else
                let args = Array.of_list args in
                Array.iter
                  (fun dest ->
                    if !overflowed = None then
                      enqueue ~time ~sender:inst.Net.path dest r.Net.rt_gsig
                        args)
                  r.Net.rt_dests))
      effects
  in
  let marker ~time kind target info =
    record (Sim.Trace.Fault { time; kind; target; info })
  in
  (* initial state *)
  marker ~time:0L "mc_init" "network" (Printf.sprintf "cap=%d" capacity);
  Array.iter
    (fun (inst : Net.inst) ->
      if !overflowed = None then begin
        let e = execs.(inst.Net.ix) in
        route_effects ~time:0L inst (Net.exec_initial_entry e);
        if !overflowed = None then
          route_effects ~time:0L inst (Net.exec_run_completions e)
      end)
    net.Net.insts;
  (* the schedule *)
  let steps_run = ref 0 in
  let run_step t step =
    let time = Int64.of_int t in
    (match step with
    | Explore.S_inject e ->
      let input = net.Net.env_inputs.(e) in
      let inst = net.Net.insts.(input.Net.ei_target) in
      marker ~time "mc_inject" inst.Net.path
        (Net.sig_name net input.Net.ei_gsig);
      enqueue ~time ~sender:"env" input.Net.ei_target input.Net.ei_gsig
        (Net.canonical_args net input.Net.ei_gsig)
    | Explore.S_deliver ix -> (
      let inst = net.Net.insts.(ix) in
      match queues.(ix) with
      | [] -> fail "mc_deliver at t=%d: %s has an empty queue" t inst.Net.path
      | m :: rest ->
        queues.(ix) <- rest;
        let signal = Net.sig_name net m.q_gsig in
        marker ~time "mc_deliver" inst.Net.path signal;
        let e = execs.(ix) in
        let before = Net.exec_state e in
        let step =
          Net.exec_dispatch e ~signal
            ~args:(Net.bind_args net m.q_gsig m.q_args)
        in
        route_effects ~time inst step.Efsm.Interp.effects;
        if step.Efsm.Interp.fired = None then
          record (Sim.Trace.Discard { time; process = inst.Net.path; signal })
        else
          record
            (Sim.Trace.State_change
               {
                 time;
                 process = inst.Net.path;
                 from_ = before;
                 to_ = Net.exec_state e;
               }))
    | Explore.S_timer ix ->
      let inst = net.Net.insts.(ix) in
      let e = execs.(ix) in
      let delay =
        match Net.exec_timer_request e with
        | Some d -> d
        | None -> fail "mc_timer at t=%d: no timer armed at %s" t inst.Net.path
      in
      marker ~time "mc_timer" inst.Net.path (string_of_int delay);
      let before = Net.exec_state e in
      let step = Net.exec_fire_timer e ~entered_state:before in
      route_effects ~time inst step.Efsm.Interp.effects;
      if step.Efsm.Interp.fired = None then
        record
          (Sim.Trace.Discard { time; process = inst.Net.path; signal = "timer" })
      else
        record
          (Sim.Trace.State_change
             {
               time;
               process = inst.Net.path;
               from_ = before;
               to_ = Net.exec_state e;
             }));
    incr steps_run
  in
  (try
     List.iteri
       (fun k step -> if !overflowed = None then run_step (k + 1) step)
       schedule
   with Replay_error _ as e -> raise e);
  (* verdict: recomputed from the final state, never copied in *)
  let verdict =
    match !overflowed with
    | Some (path, signal) -> V_overflow (path, signal)
    | None ->
      let members =
        Net.blocked_set net
          ~state_of:(fun ix ->
            let inst = net.Net.insts.(ix) in
            match
              Efsm.Compiled.state_id_of_name inst.Net.prog
                (Net.exec_state execs.(ix))
            with
            | Some s -> s
            | None -> fail "unknown state at %s" inst.Net.path)
          ~queue_empty:(fun ix -> queues.(ix) = [])
      in
      if members = [] then V_none
      else begin
        let paths =
          List.map (fun ix -> net.Net.insts.(ix).Net.path) members
        in
        marker
          ~time:(Int64.of_int (List.length schedule + 1))
          "mc_deadlock"
          (String.concat "," paths)
          "-";
        V_deadlock paths
      end
  in
  let final =
    Array.to_list net.Net.insts
    |> List.map (fun (inst : Net.inst) ->
           ( inst.Net.path,
             Net.exec_state execs.(inst.Net.ix),
             List.length queues.(inst.Net.ix) ))
  in
  (trace, { s_steps = !steps_run; s_verdict = verdict; s_final = final })

let emit_result net ~engine ~capacity ~schedule =
  match emit net ~engine ~capacity ~schedule with
  | r -> Ok r
  | exception Replay_error m -> Error m
  | exception Efsm.Action.Type_error m -> Error ("action error: " ^ m)

(* ---- schedule extraction and byte-for-byte replay --------------------- *)

let parse_schedule (net : Net.t) trace =
  let capacity = ref None in
  let schedule = ref [] in
  let ix_of path =
    match Hashtbl.find_opt net.Net.ix_of_path path with
    | Some ix -> ix
    | None -> fail "unknown instance %s in trace" path
  in
  Sim.Trace.iter trace
    (fun event ->
      match event with
      | Sim.Trace.Fault { kind = "mc_init"; info; _ } -> (
        match int_of_string_opt (Option.value ~default:"" (
            if String.length info > 4 && String.sub info 0 4 = "cap=" then
              Some (String.sub info 4 (String.length info - 4))
            else None))
        with
        | Some c -> capacity := Some c
        | None -> fail "malformed mc_init marker (info %S)" info)
      | Sim.Trace.Fault { kind = "mc_inject"; target; info; _ } ->
        let ix = ix_of target in
        let gsig =
          match Hashtbl.find_opt net.Net.sig_ids info with
          | Some g -> g
          | None -> fail "unknown signal %s in mc_inject" info
        in
        let input = ref None in
        Array.iteri
          (fun e (i : Net.env_input) ->
            if !input = None && i.Net.ei_target = ix && i.Net.ei_gsig = gsig
            then input := Some e)
          net.Net.env_inputs;
        (match !input with
        | Some e -> schedule := Explore.S_inject e :: !schedule
        | None ->
          fail "the environment cannot inject %s at %s" info target)
      | Sim.Trace.Fault { kind = "mc_deliver"; target; _ } ->
        schedule := Explore.S_deliver (ix_of target) :: !schedule
      | Sim.Trace.Fault { kind = "mc_timer"; target; _ } ->
        schedule := Explore.S_timer (ix_of target) :: !schedule
      | _ -> ());
  match !capacity with
  | None -> fail "no mc_init marker: not a model-checker counterexample"
  | Some c -> (c, List.rev !schedule)

(* Re-execute the embedded schedule under [engine] and require the
   regenerated trace to equal the input byte for byte. *)
let replay (net : Net.t) ~engine trace =
  match
    let capacity, schedule = parse_schedule net trace in
    let regenerated, summary = emit net ~engine ~capacity ~schedule in
    (Sim.Trace.to_lines trace, Sim.Trace.to_lines regenerated, summary)
  with
  | original, regenerated, summary ->
    let rec compare i a b =
      match (a, b) with
      | [], [] -> Ok summary
      | x :: a', y :: b' ->
        if String.equal x y then compare (i + 1) a' b'
        else
          Error
            (Printf.sprintf "replay diverges at line %d:\n  trace:  %s\n  replay: %s"
               i x y)
      | x :: _, [] ->
        Error (Printf.sprintf "replay ends early at line %d (trace has %s)" i x)
      | [], y :: _ ->
        Error (Printf.sprintf "replay continues past the trace at line %d (%s)" i y)
    in
    compare 1 original regenerated
  | exception Replay_error m -> Error m
  | exception Efsm.Action.Type_error m -> Error ("action error: " ^ m)
