(* Explicit-state exploration of the composed EFSM network.

   Global states are flat int vectors: per instance the control-state
   id and every variable slot (tag + value), then the bounded mailbox
   contents (signal id + payload), then the remaining exploration
   budgets.  The *concrete* vector is what successor computation
   restores from; the *canonical* vector — the same layout with
   control-irrelevant slots masked to zero ({!Coi}) — keys the visited
   set, so states differing only in dead counters merge into one
   representative.

   Budgets make the space finite: per-environment-input injection
   budget, per-instance timer-fire budget, bounded queues, and a hard
   state cap.  The deadlock property is independent of the budgets (an
   armed timer or an environment-injectable trigger counts as an escape
   whether or not its budget is spent), so exhausting the budgeted
   space never manufactures a spurious deadlock.

   Partial-order reduction: when some instance's every enabled step is
   *silent* (consumes only its own queue head or timer and provably
   emits nothing to another machine instance — {!Net.inst.silent_on})
   and its queue is below capacity, that instance's steps form a
   persistent set and the other interleavings are pruned.  Silent steps
   strictly shrink queued-work + timer budgets, so prioritising them
   cannot starve the deferred steps (no ignoring problem), and the
   below-capacity guard keeps queue-overflow detection exact. *)

type order = Dfs | Bfs

type budget = {
  max_states : int;
  max_depth : int;  (** 0 = unlimited *)
  queue_capacity : int;
  env_budget : int;  (** injections per environment input *)
  timer_budget : int;  (** timer fires per instance *)
}

(* Defaults sized so the reference TUTMAC network is exhausted in well
   under a second: one injection per environment input, two timer fires
   per instance.  Raising --env-budget to 2 grows the bounded space to
   ~240k states (it once surfaced a genuine RChConfig queue overflow at
   the slot allocator, since closed by admission control at the radio
   configurator); the budgets are the knob, not the ceiling. *)
let default_budget =
  {
    max_states = 200_000;
    max_depth = 0;
    queue_capacity = 8;
    env_budget = 1;
    timer_budget = 2;
  }

type config = {
  order : order;
  budget : budget;
  por : bool;
  coi : bool;
  check_deadlock : bool;
  check_overflow : bool;
}

let default_config =
  {
    order = Bfs;
    budget = default_budget;
    por = true;
    coi = true;
    check_deadlock = true;
    check_overflow = true;
  }

type step =
  | S_deliver of int  (** instance delivers its queue head *)
  | S_timer of int  (** instance's armed timer fires *)
  | S_inject of int  (** environment input injects its signal *)

type msg = { m_gsig : int; m_args : Efsm.Action.value array }

type violation =
  | V_deadlock of { members : int list }
      (** detected at the end of the returned schedule *)
  | V_overflow of { dest : int; gsig : int }
      (** the schedule's last step enqueues past capacity at [dest] *)

type stats = {
  states : int;
  steps : int;  (** global transitions executed *)
  dedup : int;  (** successors merged into an already-visited state *)
  frontier_peak : int;
  exhausted : bool;
}

type result = {
  stats : stats;
  violation : (violation * step list) option;
      (** with the schedule reaching it from the initial state *)
  unreached_states : (string * string) list;  (** (instance path, state) *)
  unfired_transitions : (string * int) list;
      (** (instance path, index into the machine's transition list);
          [On_signal]/[After] transitions only — completions are
          tracked through state coverage *)
  caveats : string list;
}

(* ---- int-array-keyed hash table -------------------------------------- *)
(* The polymorphic hash only samples a prefix of large arrays; state
   vectors differ deep inside, so use FNV-1a over every slot. *)

module Key = struct
  type t = int array

  let equal (a : int array) (b : int array) =
    let n = Array.length a in
    n = Array.length b
    &&
    let rec eq i = i >= n || (a.(i) = b.(i) && eq (i + 1)) in
    eq 0

  let hash (a : int array) =
    let h = ref 0x811c9dc5 in
    for i = 0 to Array.length a - 1 do
      h := (!h lxor a.(i)) * 0x100000001b3
    done;
    !h land max_int
end

module Tbl = Hashtbl.Make (Key)

(* ---- mutable working state ------------------------------------------- *)

type world = {
  execs : Efsm.Compiled.t array;
  queues : msg list array;  (** head = next to deliver *)
  timer_left : int array;
  env_left : int array;
}

(* ---- vector encoding -------------------------------------------------- *)

type enc = { mutable a : int array; mutable n : int }

let enc_create () = { a = Array.make 64 0; n = 0 }

let enc_reset e = e.n <- 0

let push e x =
  if e.n = Array.length e.a then begin
    let bigger = Array.make (2 * e.n) 0 in
    Array.blit e.a 0 bigger 0 e.n;
    e.a <- bigger
  end;
  e.a.(e.n) <- x;
  e.n <- e.n + 1

let enc_freeze e = Array.sub e.a 0 e.n

let value_code = function
  | None -> (0, 0)
  | Some (Efsm.Action.V_int n) -> (1, n)
  | Some (Efsm.Action.V_bool b) -> (2, if b then 1 else 0)

let value_of_code tag v =
  match tag with
  | 0 -> None
  | 1 -> Some (Efsm.Action.V_int v)
  | _ -> Some (Efsm.Action.V_bool (v <> 0))

(* [mask = None]: concrete vector.  [mask = Some coi]: canonical key —
   irrelevant variable and payload slots read as (0, 0). *)
let encode (net : Net.t) (coi : Coi.t option) w e =
  enc_reset e;
  Array.iter
    (fun (inst : Net.inst) ->
      let ix = inst.Net.ix in
      let ex = w.execs.(ix) in
      push e (Efsm.Compiled.state_id ex);
      let nv = Efsm.Compiled.n_vars inst.Net.prog in
      for v = 0 to nv - 1 do
        let relevant =
          match coi with
          | None -> true
          | Some c -> c.Coi.var_relevant.(ix).(v)
        in
        if relevant then begin
          let tag, value = value_code (Efsm.Compiled.read_var_id ex v) in
          push e tag;
          push e value
        end
        else begin
          push e 0;
          push e 0
        end
      done;
      push e (List.length w.queues.(ix));
      List.iter
        (fun m ->
          push e m.m_gsig;
          push e (Array.length m.m_args);
          Array.iteri
            (fun k v ->
              let relevant =
                match coi with
                | None -> true
                | Some c ->
                  let mask = c.Coi.arg_relevant.(ix).(m.m_gsig) in
                  k < Array.length mask && mask.(k)
              in
              if relevant then begin
                let tag, value = value_code (Some v) in
                push e tag;
                push e value
              end
              else begin
                push e 0;
                push e 0
              end)
            m.m_args)
        w.queues.(ix))
    net.Net.insts;
  Array.iter (fun left -> push e left) w.timer_left;
  Array.iter (fun left -> push e left) w.env_left;
  enc_freeze e

(* Restore a concrete vector into [w]; inverse of [encode] with no mask. *)
let decode (net : Net.t) (vec : int array) w =
  let pos = ref 0 in
  let next () =
    let x = vec.(!pos) in
    incr pos;
    x
  in
  Array.iter
    (fun (inst : Net.inst) ->
      let ix = inst.Net.ix in
      let ex = w.execs.(ix) in
      Efsm.Compiled.set_state_id ex (next ());
      let nv = Efsm.Compiled.n_vars inst.Net.prog in
      for v = 0 to nv - 1 do
        let tag = next () in
        let value = next () in
        Efsm.Compiled.write_var_id ex v (value_of_code tag value)
      done;
      let qlen = next () in
      let q = ref [] in
      for _ = 1 to qlen do
        let gsig = next () in
        let argc = next () in
        let args =
          Array.init argc (fun _ ->
              let tag = next () in
              let value = next () in
              match value_of_code tag value with
              | Some v -> v
              | None -> Efsm.Action.V_int 0)
        in
        q := { m_gsig = gsig; m_args = args } :: !q
      done;
      w.queues.(ix) <- List.rev !q)
    net.Net.insts;
  for i = 0 to Array.length w.timer_left - 1 do
    w.timer_left.(i) <- next ()
  done;
  for i = 0 to Array.length w.env_left - 1 do
    w.env_left.(i) <- next ()
  done

(* ---- step application ------------------------------------------------- *)

exception Overflow of int * int  (** dest instance, gsig *)

(* Route one effect list; enqueues copies per receiving instance. *)
let route_effects w ~capacity (inst : Net.inst) effects =
  List.iter
    (fun effect ->
      match effect with
      | Efsm.Action.Eff_compute _ -> ()
      | Efsm.Action.Eff_send { port; signal; args } -> (
        match Net.find_route inst ~port ~signal with
        | None -> ()
        | Some r ->
          let args = Array.of_list args in
          Array.iter
            (fun dest ->
              if List.length w.queues.(dest) >= capacity then
                raise (Overflow (dest, r.Net.rt_gsig));
              w.queues.(dest) <-
                w.queues.(dest) @ [ { m_gsig = r.Net.rt_gsig; m_args = args } ])
            r.Net.rt_dests))
    effects

(* Execute [step]; returns the machine transition that fired, if any.
   Raises [Overflow] when an emission exceeds a queue's capacity. *)
let apply_step (net : Net.t) w ~capacity step =
  match step with
  | S_inject e ->
    let input = net.Net.env_inputs.(e) in
    let dest = input.Net.ei_target in
    if List.length w.queues.(dest) >= capacity then
      raise (Overflow (dest, input.Net.ei_gsig));
    w.queues.(dest) <-
      w.queues.(dest)
      @ [
          {
            m_gsig = input.Net.ei_gsig;
            m_args = Net.canonical_args net input.Net.ei_gsig;
          };
        ];
    w.env_left.(e) <- w.env_left.(e) - 1;
    None
  | S_deliver ix -> (
    let inst = net.Net.insts.(ix) in
    match w.queues.(ix) with
    | [] -> invalid_arg "apply_step: empty queue"
    | m :: rest ->
      w.queues.(ix) <- rest;
      let step =
        Efsm.Compiled.dispatch w.execs.(ix)
          ~signal:(Net.sig_name net m.m_gsig)
          ~args:(Net.bind_args net m.m_gsig m.m_args)
      in
      route_effects w ~capacity inst step.Efsm.Interp.effects;
      step.Efsm.Interp.fired)
  | S_timer ix ->
    let inst = net.Net.insts.(ix) in
    let entered = Efsm.Compiled.state w.execs.(ix) in
    let step = Efsm.Compiled.fire_timer w.execs.(ix) ~entered_state:entered in
    w.timer_left.(ix) <- w.timer_left.(ix) - 1;
    route_effects w ~capacity inst step.Efsm.Interp.effects;
    step.Efsm.Interp.fired

(* ---- enabled steps and the persistent set ----------------------------- *)

let enabled_steps (net : Net.t) w cfg =
  let cap = cfg.budget.queue_capacity in
  let acc = ref [] in
  for e = Array.length net.Net.env_inputs - 1 downto 0 do
    if w.env_left.(e) > 0 then acc := S_inject e :: !acc
  done;
  for ix = Array.length net.Net.insts - 1 downto 0 do
    let ex = w.execs.(ix) in
    if
      w.timer_left.(ix) > 0
      && Efsm.Compiled.after_min_of net.Net.insts.(ix).Net.prog
           (Efsm.Compiled.state_id ex)
         >= 0
    then acc := S_timer ix :: !acc;
    if w.queues.(ix) <> [] then acc := S_deliver ix :: !acc
  done;
  ignore cap;
  !acc

(* The lowest-indexed instance whose every enabled step is silent and
   whose queue is below capacity; its steps form a persistent set. *)
let ample (net : Net.t) w cfg =
  let cap = cfg.budget.queue_capacity in
  let n = Array.length net.Net.insts in
  let rec find ix =
    if ix >= n then None
    else begin
      let inst = net.Net.insts.(ix) in
      let ex = w.execs.(ix) in
      let s = Efsm.Compiled.state_id ex in
      let qlen = List.length w.queues.(ix) in
      let timer_enabled =
        w.timer_left.(ix) > 0
        && Efsm.Compiled.after_min_of inst.Net.prog s >= 0
      in
      let deliver_enabled = qlen > 0 in
      if (not deliver_enabled) && not timer_enabled then find (ix + 1)
      else if qlen >= cap then find (ix + 1)
      else begin
        let deliver_ok =
          (not deliver_enabled)
          ||
          match w.queues.(ix) with
          | m :: _ -> inst.Net.silent_on.(s).(m.m_gsig)
          | [] -> true
        in
        let timer_ok = (not timer_enabled) || inst.Net.silent_after.(s) in
        if deliver_ok && timer_ok then begin
          let steps = ref [] in
          if timer_enabled then steps := [ S_timer ix ];
          if deliver_enabled then steps := S_deliver ix :: !steps;
          Some !steps
        end
        else find (ix + 1)
      end
    end
  in
  find 0

(* ---- the search ------------------------------------------------------- *)

type store = {
  mutable vecs : int array array;
  mutable parents : int array;
  mutable vias : step array;
  mutable depths : int array;
  mutable count : int;
}

let store_create () =
  {
    vecs = Array.make 1024 [||];
    parents = Array.make 1024 (-1);
    vias = Array.make 1024 (S_deliver (-1));
    depths = Array.make 1024 0;
    count = 0;
  }

let store_add st vec parent via depth =
  if st.count = Array.length st.vecs then begin
    let n = 2 * st.count in
    let grow a init =
      let b = Array.make n init in
      Array.blit a 0 b 0 st.count;
      b
    in
    st.vecs <- grow st.vecs [||];
    st.parents <- grow st.parents (-1);
    st.vias <- grow st.vias (S_deliver (-1));
    st.depths <- grow st.depths 0
  end;
  let id = st.count in
  st.vecs.(id) <- vec;
  st.parents.(id) <- parent;
  st.vias.(id) <- via;
  st.depths.(id) <- depth;
  st.count <- id + 1;
  id

let schedule_to st id extra =
  let rec build id acc =
    if id <= 0 then acc else build st.parents.(id) (st.vias.(id) :: acc)
  in
  build id [] @ extra

let fresh_world (net : Net.t) budget =
  {
    execs =
      Array.map
        (fun (i : Net.inst) -> Efsm.Compiled.create i.Net.prog)
        net.Net.insts;
    queues = Array.make (Net.n_insts net) [];
    timer_left = Array.make (Net.n_insts net) budget.timer_budget;
    env_left = Array.make (Array.length net.Net.env_inputs) budget.env_budget;
  }

(* Initial global state: every instance runs its initial entry actions
   and completions (instance order), emissions routed. *)
let init_world (net : Net.t) w ~capacity =
  Array.iter
    (fun (inst : Net.inst) ->
      let ix = inst.Net.ix in
      let ex = w.execs.(ix) in
      route_effects w ~capacity inst (Efsm.Compiled.initial_entry ex);
      route_effects w ~capacity inst (Efsm.Compiled.run_completions ex))
    net.Net.insts

let caveat_strings (net : Net.t) =
  Array.to_list net.Net.env_inputs
  |> List.filter (fun (e : Net.env_input) -> e.Net.ei_guard_read)
  |> List.map (fun (e : Net.env_input) ->
         Printf.sprintf
           "a guard at %s reads a parameter of environment signal %s; only \
            the canonical zero payload was explored"
           net.Net.insts.(e.Net.ei_target).Net.path
           (Net.sig_name net e.Net.ei_gsig))
  |> List.sort_uniq compare

let run ?(config = default_config) (net : Net.t) =
  let cfg = config in
  let capacity = cfg.budget.queue_capacity in
  let coi = if cfg.coi then Some (Coi.analyse net) else None in
  let net = match coi with Some c -> Coi.apply_caveats net c | None -> net in
  let store = store_create () in
  let visited = Tbl.create 4096 in
  let enc = enc_create () in
  let w = fresh_world net cfg.budget in
  (* coverage marks *)
  let state_seen =
    Array.map
      (fun (i : Net.inst) ->
        Array.make (Efsm.Compiled.n_states i.Net.prog) false)
      net.Net.insts
  in
  let tr_fired =
    Array.map
      (fun (i : Net.inst) -> Array.make (Array.length i.Net.transitions) false)
      net.Net.insts
  in
  let mark_states () =
    Array.iter
      (fun (i : Net.inst) ->
        state_seen.(i.Net.ix).(Efsm.Compiled.state_id w.execs.(i.Net.ix)) <-
          true)
      net.Net.insts
  in
  let mark_fired ix tr =
    let trs = net.Net.insts.(ix).Net.transitions in
    let n = Array.length trs in
    let rec find k = if k >= n then () else if trs.(k) == tr then tr_fired.(ix).(k) <- true else find (k + 1) in
    find 0
  in
  let steps_done = ref 0 in
  let dedup = ref 0 in
  let frontier_peak = ref 0 in
  let truncated = ref false in
  let violation = ref None in
  (* frontier *)
  let stack = ref [] in
  let bfs_q = Queue.create () in
  let frontier_len = ref 0 in
  let frontier_push id =
    (match cfg.order with
    | Dfs -> stack := id :: !stack
    | Bfs -> Queue.add id bfs_q);
    incr frontier_len;
    if !frontier_len > !frontier_peak then frontier_peak := !frontier_len
  in
  let frontier_pop () =
    match cfg.order with
    | Dfs -> (
      match !stack with
      | [] -> None
      | id :: rest ->
        stack := rest;
        decr frontier_len;
        Some id)
    | Bfs ->
      if Queue.is_empty bfs_q then None
      else begin
        decr frontier_len;
        Some (Queue.take bfs_q)
      end
  in
  (* root *)
  (try
     init_world net w ~capacity;
     mark_states ();
     let concrete = encode net None w enc in
     let key = encode net coi w enc in
     let id = store_add store concrete (-1) (S_deliver (-1)) 0 in
     Tbl.replace visited key id;
     frontier_push id;
     if cfg.check_deadlock then begin
       let members =
         Net.blocked_set net
           ~state_of:(fun ix -> Efsm.Compiled.state_id w.execs.(ix))
           ~queue_empty:(fun ix -> w.queues.(ix) = [])
       in
       if members <> [] then violation := Some (V_deadlock { members }, [])
     end
   with Overflow (dest, gsig) ->
     if cfg.check_overflow then
       violation := Some (V_overflow { dest; gsig }, []));
  let stop = ref (!violation <> None) in
  while not !stop do
    match frontier_pop () with
    | None -> stop := true
    | Some id ->
      let vec = store.vecs.(id) in
      let depth = store.depths.(id) in
      decode net vec w;
      let steps =
        if cfg.por then
          match ample net w cfg with
          | Some steps -> steps
          | None -> enabled_steps net w cfg
        else enabled_steps net w cfg
      in
      let explore_step step =
        if not !stop then begin
          decode net vec w;
          incr steps_done;
          match apply_step net w ~capacity step with
          | fired ->
            (match (step, fired) with
            | S_deliver ix, Some tr | S_timer ix, Some tr -> mark_fired ix tr
            | _ -> ());
            let key = encode net coi w enc in
            (match Tbl.find_opt visited key with
            | Some _ -> incr dedup
            | None ->
              if store.count >= cfg.budget.max_states then begin
                truncated := true;
                stop := true
              end
              else if cfg.budget.max_depth > 0 && depth + 1 > cfg.budget.max_depth
              then truncated := true
              else begin
                mark_states ();
                let concrete = encode net None w enc in
                let sid = store_add store concrete id step (depth + 1) in
                Tbl.replace visited (Array.copy key) sid;
                frontier_push sid;
                if cfg.check_deadlock then begin
                  let members =
                    Net.blocked_set net
                      ~state_of:(fun ix ->
                        Efsm.Compiled.state_id w.execs.(ix))
                      ~queue_empty:(fun ix -> w.queues.(ix) = [])
                  in
                  if members <> [] then begin
                    violation :=
                      Some (V_deadlock { members }, schedule_to store sid []);
                    stop := true
                  end
                end
              end)
          | exception Overflow (dest, gsig) ->
            if cfg.check_overflow then begin
              violation :=
                Some
                  (V_overflow { dest; gsig }, schedule_to store id [ step ]);
              stop := true
            end
        end
      in
      List.iter explore_step steps
  done;
  let exhausted =
    (not !truncated) && !violation = None
    && (match cfg.order with
       | Dfs -> !stack = []
       | Bfs -> Queue.is_empty bfs_q)
  in
  let unreached_states =
    Array.to_list net.Net.insts
    |> List.concat_map (fun (i : Net.inst) ->
           List.filteri
             (fun s _ -> not state_seen.(i.Net.ix).(s))
             (List.init
                (Efsm.Compiled.n_states i.Net.prog)
                (fun s -> Efsm.Compiled.state_name_of_id i.Net.prog s))
           |> List.map (fun name -> (i.Net.path, name)))
  in
  let unfired_transitions =
    Array.to_list net.Net.insts
    |> List.concat_map (fun (i : Net.inst) ->
           Array.to_list
             (Array.mapi (fun k tr -> (k, tr)) i.Net.transitions)
           |> List.filter_map (fun (k, (tr : Efsm.Machine.transition)) ->
                  match tr.Efsm.Machine.trigger with
                  | Efsm.Machine.Completion -> None
                  | Efsm.Machine.On_signal _ | Efsm.Machine.After _ ->
                    if tr_fired.(i.Net.ix).(k) then None
                    else Some (i.Net.path, k)))
  in
  {
    stats =
      {
        states = store.count;
        steps = !steps_done;
        dedup = !dedup;
        frontier_peak = !frontier_peak;
        exhausted;
      };
    violation = !violation;
    unreached_states;
    unfired_transitions;
    caveats = caveat_strings net;
  }
