(* The `tutflow check` property checker.

   Orchestrates {!Net} elaboration, {!Explore} search and
   {!Counterexample} emission into a report of {!Lint.Diagnostic}
   values with stable M-codes, mirroring the lint engine so the two
   front ends share rendering, JSONL encoding and severity gating:

   - M01 error: reachable global deadlock (with replayable schedule);
   - M02 error: bounded-queue overflow (with replayable schedule);
   - M03 warning: control state unreached in an exhaustive exploration;
   - M04 warning: triggered transition that never fires;
   - M05 warning: exploration truncated, absence verdicts not exhaustive;
   - M06 warning: environment-payload caveat (a guard reads a parameter
     of an injected signal; only the canonical zero payload explored).

   The rendered text report is deterministic — no wall-clock times, no
   hash-order dependence — so CI pins it byte for byte. *)

type property = P_all | P_deadlock | P_overflow

let property_of_string = function
  | "all" -> Some P_all
  | "deadlock" -> Some P_deadlock
  | "overflow" -> Some P_overflow
  | _ -> None

let property_to_string = function
  | P_all -> "all"
  | P_deadlock -> "deadlock"
  | P_overflow -> "overflow"

type options = {
  order : Explore.order;
  budget : Explore.budget;
  por : bool;
  coi : bool;
  property : property;
}

let default_options =
  {
    order = Explore.Bfs;
    budget = Explore.default_budget;
    por = true;
    coi = true;
    property = P_all;
  }

type report = {
  r_options : options;
  r_insts : int;
  r_env_inputs : int;
  r_stats : Explore.stats;
  r_total_states : int;  (** control states across all instances *)
  r_total_transitions : int;  (** [On_signal]/[After] transitions *)
  r_unreached : int;
  r_unfired : int;
  r_diagnostics : Lint.Diagnostic.t list;
  r_trace : Sim.Trace.t option;  (** counterexample, when violated *)
  r_cx : Counterexample.summary option;
}

let catalog =
  [
    ("M01", Lint.Diagnostic.Error, "reachable global deadlock");
    ("M02", Lint.Diagnostic.Error, "bounded signal queue overflow");
    ( "M03",
      Lint.Diagnostic.Warning,
      "control state unreached in exhaustive exploration" );
    ("M04", Lint.Diagnostic.Warning, "triggered transition never fires");
    ( "M05",
      Lint.Diagnostic.Warning,
      "exploration truncated: absence verdicts are not exhaustive" );
    ( "M06",
      Lint.Diagnostic.Warning,
      "environment payload caveat: only the canonical zero payload explored"
    );
  ]

let trigger_label = function
  | Efsm.Machine.On_signal s -> "on " ^ s
  | Efsm.Machine.After n -> Printf.sprintf "after %d" n
  | Efsm.Machine.Completion -> "completion"

let config_of options =
  {
    Explore.order = options.order;
    budget = options.budget;
    por = options.por;
    coi = options.coi;
    check_deadlock = options.property <> P_overflow;
    check_overflow = options.property <> P_deadlock;
  }

let diagnostics_of (net : Net.t) options (res : Explore.result) =
  let mk = Lint.Diagnostic.make in
  let violation =
    match res.Explore.violation with
    | Some (Explore.V_deadlock { members }, schedule) ->
      let paths = List.map (fun ix -> net.Net.insts.(ix).Net.path) members in
      [
        mk ~rule:"M01" Lint.Diagnostic.Error
          (Printf.sprintf
             "reachable deadlock: %s all waiting on empty queues after %d \
              steps, with no timer or environment escape"
             (String.concat ", " paths)
             (List.length schedule));
      ]
    | Some (Explore.V_overflow { dest; gsig }, schedule) ->
      [
        mk ~rule:"M02" Lint.Diagnostic.Error
          (Printf.sprintf
             "queue overflow at %s: signal %s exceeds capacity %d after %d \
              steps"
             net.Net.insts.(dest).Net.path (Net.sig_name net gsig)
             options.budget.Explore.queue_capacity (List.length schedule));
      ]
    | None -> []
  in
  let truncated =
    if res.Explore.stats.Explore.exhausted || violation <> [] then []
    else
      [
        mk ~rule:"M05" Lint.Diagnostic.Warning
          (Printf.sprintf
             "exploration truncated after %d states; unreached-state and \
              unfired-transition verdicts are suppressed (raise --max-states)"
             res.Explore.stats.Explore.states);
      ]
  in
  let caveats =
    List.map
      (fun c -> mk ~rule:"M06" Lint.Diagnostic.Warning c)
      res.Explore.caveats
  in
  (* Coverage warnings only mean something when the bounded state space
     was fully explored without hitting a violation first. *)
  let coverage =
    if not res.Explore.stats.Explore.exhausted then []
    else
      List.map
        (fun (path, state) ->
          mk ~rule:"M03" Lint.Diagnostic.Warning
            (Printf.sprintf "%s: control state %s is never reached" path state))
        res.Explore.unreached_states
      @ List.map
          (fun (path, k) ->
            let inst =
              net.Net.insts.(Hashtbl.find net.Net.ix_of_path path)
            in
            let tr = inst.Net.transitions.(k) in
            mk ~rule:"M04" Lint.Diagnostic.Warning
              (Printf.sprintf "%s: transition %s -> %s (%s) never fires" path
                 tr.Efsm.Machine.source tr.Efsm.Machine.target
                 (trigger_label tr.Efsm.Machine.trigger)))
          res.Explore.unfired_transitions
  in
  violation @ truncated @ caveats @ coverage

let totals (net : Net.t) =
  Array.fold_left
    (fun (states, triggered) (inst : Net.inst) ->
      let t =
        Array.fold_left
          (fun acc (tr : Efsm.Machine.transition) ->
            match tr.Efsm.Machine.trigger with
            | Efsm.Machine.On_signal _ | Efsm.Machine.After _ -> acc + 1
            | Efsm.Machine.Completion -> acc)
          0 inst.Net.transitions
      in
      (states + Efsm.Compiled.n_states inst.Net.prog, triggered + t))
    (0, 0) net.Net.insts

let run ?(obs = Obs.Scope.null ()) ?(options = default_options) model =
  match
    let net = Net.build model in
    let res = Explore.run ~config:(config_of options) net in
    (net, res)
  with
  | exception Efsm.Action.Type_error m ->
    Error ("model elaboration failed: " ^ m)
  | exception Invalid_argument m -> Error ("model elaboration failed: " ^ m)
  | exception Not_found -> Error "model elaboration failed: unresolved name"
  | net, res ->
    let stats = res.Explore.stats in
    (if Obs.Scope.live obs then begin
       let metrics = Obs.Scope.metrics obs in
       let c name v =
         Obs.Metrics.inc ~by:v (Obs.Metrics.counter metrics name)
       in
       c "mc.states_total" stats.Explore.states;
       c "mc.steps_total" stats.Explore.steps;
       c "mc.dedup_total" stats.Explore.dedup;
       c "mc.frontier_peak" stats.Explore.frontier_peak;
       let tracer = Obs.Scope.tracer obs in
       if Obs.Tracer.enabled tracer then
         Obs.Tracer.complete tracer ~ts_ns:0L
           ~dur_ns:(Int64.of_int (max 1 stats.Explore.steps))
           ~cat:"mc" ~track:"mc"
           ~args:
             [
               ("states", Obs.Span.Int stats.Explore.states);
               ("steps", Obs.Span.Int stats.Explore.steps);
               ("exhausted", Obs.Span.Bool stats.Explore.exhausted);
             ]
           "mc.explore"
     end);
    let trace, cx =
      match res.Explore.violation with
      | None -> (None, None)
      | Some (_, schedule) -> (
        match
          Counterexample.emit_result net ~engine:Net.Compiled
            ~capacity:options.budget.Explore.queue_capacity ~schedule
        with
        | Ok (t, s) -> (Some t, Some s)
        | Error _ -> (None, None))
    in
    let total_states, total_transitions = totals net in
    Ok
      {
        r_options = options;
        r_insts = Net.n_insts net;
        r_env_inputs = Array.length net.Net.env_inputs;
        r_stats = stats;
        r_total_states = total_states;
        r_total_transitions = total_transitions;
        r_unreached = List.length res.Explore.unreached_states;
        r_unfired = List.length res.Explore.unfired_transitions;
        r_diagnostics = diagnostics_of net options res;
        r_trace = trace;
        r_cx = cx;
      }

(* ---- deterministic text report ---------------------------------------- *)

let render r =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let o = r.r_options in
  line "model checker: %d machine instances, %d environment inputs" r.r_insts
    r.r_env_inputs;
  line "budget: max-states %d, max-depth %s, queue-capacity %d, env %d, timer %d"
    o.budget.Explore.max_states
    (if o.budget.Explore.max_depth = 0 then "unlimited"
     else string_of_int o.budget.Explore.max_depth)
    o.budget.Explore.queue_capacity o.budget.Explore.env_budget
    o.budget.Explore.timer_budget;
  line "options: order %s, por %s, coi %s, property %s"
    (match o.order with Explore.Bfs -> "bfs" | Explore.Dfs -> "dfs")
    (if o.por then "on" else "off")
    (if o.coi then "on" else "off")
    (property_to_string o.property);
  line "explored: %d states, %d transitions%s" r.r_stats.Explore.states
    r.r_stats.Explore.steps
    (if r.r_stats.Explore.exhausted then " (exhaustive within bounds)" else "");
  let violated rule =
    List.exists
      (fun (d : Lint.Diagnostic.t) -> d.Lint.Diagnostic.rule = rule)
      r.r_diagnostics
  in
  (match o.property with
  | P_overflow -> line "deadlock: not checked"
  | P_all | P_deadlock ->
    if violated "M01" then line "deadlock: REACHABLE"
    else line "deadlock: none reachable within bounds");
  (match o.property with
  | P_deadlock -> line "queue overflow: not checked"
  | P_all | P_overflow ->
    if violated "M02" then line "queue overflow: REACHABLE"
    else
      line "queue overflow: none reachable within bounds (capacity %d)"
        o.budget.Explore.queue_capacity);
  line "state coverage: %d/%d control states reached"
    (r.r_total_states - r.r_unreached)
    r.r_total_states;
  line "transition coverage: %d/%d triggered transitions fired"
    (r.r_total_transitions - r.r_unfired)
    r.r_total_transitions;
  List.iter
    (fun d -> line "%s" (Lint.Diagnostic.render d))
    r.r_diagnostics;
  (match r.r_cx with
  | Some s when s.Counterexample.s_verdict <> Counterexample.V_none ->
    line "counterexample: %d steps, replayable (see --trace-out)"
      s.Counterexample.s_steps
  | _ -> ());
  line "check: %d errors, %d warnings"
    (List.length (Lint.Diagnostic.errors r.r_diagnostics))
    (List.length (Lint.Diagnostic.warnings r.r_diagnostics));
  Buffer.contents b

(* ---- lint bridge ------------------------------------------------------ *)

(* A memoised deadlock oracle for {!Lint.Pass.context}: one bounded
   exploration on first use, shared by every cycle the static pass
   asks about.  Failures (lint often runs on models the checker cannot
   elaborate) degrade to [Deadlock_unknown] rather than aborting the
   lint run. *)
let deadlock_oracle ?(options = default_options) model =
  let verdict = ref None in
  let explore () =
    match
      let net = Net.build model in
      Explore.run
        ~config:{ (config_of options) with Explore.check_overflow = false }
        net
    with
    | exception _ -> `Failed
    | res -> (
      match res.Explore.violation with
      | Some (Explore.V_deadlock { members }, _) ->
        let net = Net.build model in
        `Witness (List.map (fun ix -> net.Net.insts.(ix).Net.path) members)
      | Some (Explore.V_overflow _, _) | None ->
        if res.Explore.stats.Explore.exhausted then
          `Free (res.Explore.stats.Explore.states, true)
        else `Truncated res.Explore.stats.Explore.states)
  in
  fun ~members:_ ->
    let v =
      match !verdict with
      | Some v -> v
      | None ->
        let v = explore () in
        verdict := Some v;
        v
    in
    match v with
    | `Witness paths -> Lint.Pass.Deadlock_witness { members = paths }
    | `Free (states, exhaustive) ->
      Lint.Pass.Deadlock_free { states; exhaustive }
    | `Truncated states -> Lint.Pass.Deadlock_unknown { states }
    | `Failed -> Lint.Pass.Deadlock_unknown { states = 0 }
