(* Checker-side elaboration of the instance network.

   [Lint.Network] answers the structural questions (who receives a
   signal sent through a port, what the environment injects/absorbs);
   this module freezes those answers into integer-indexed tables the
   explorer can consult without allocation: one compiled program per
   class, one route table per instance, globally interned signal names,
   and the per-(state, signal) "silent step" and wait-state summaries
   that partial-order reduction and deadlock detection are built on. *)

type route = {
  rt_port : string;
  rt_signal : string;
  rt_gsig : int;  (** global signal id of [rt_signal] *)
  rt_dests : int array;  (** receiving machine instances, sorted by path *)
  rt_env : bool;  (** a root boundary port absorbs the signal *)
}

type sig_info = {
  sg_name : string;
  sg_params : (string * Uml.Signal.param_type) array;
  sg_words : int;
      (** bus words of one message: payload words plus one header word
          per parameter, at least 1 — the same formula the code
          generator uses *)
}

(* Static wait summary of one control state: what the deadlock fixpoint
   needs.  [None] when the state is not a wait candidate (it has a
   timer escape, a completion, or no outgoing transitions at all). *)
type wait = {
  w_env : bool;  (** some trigger is environment-injectable *)
  w_producers : int array array;
      (** per trigger signal: machine instances that can deliver it *)
}

type inst = {
  ix : int;
  path : string;
  class_name : string;
  machine : Efsm.Machine.t;
  prog : Efsm.Compiled.program;
  routes : (string, route) Hashtbl.t;  (** key: [port ^ "\000" ^ signal] *)
  waits : wait option array;  (** per state id *)
  silent_on : bool array array;  (** [state].(gsig): delivery is silent *)
  silent_after : bool array;  (** [state]: the armed timer step is silent *)
  transitions : Efsm.Machine.transition array;  (** declaration order *)
}

type env_input = {
  ei_target : int;
  ei_gsig : int;
  ei_guard_read : bool;
      (** some parameter of the signal is control-relevant at the
          target — injecting only the canonical zero payload is then a
          documented under-approximation (see {!Coi}) *)
}

type t = {
  model : Uml.Model.t;
  network : Lint.Network.t;
  insts : inst array;
  sigs : sig_info array;
  sig_ids : (string, int) Hashtbl.t;
  env_inputs : env_input array;
  ix_of_path : (string, int) Hashtbl.t;
}

let route_key port signal = port ^ "\000" ^ signal

let words_of_signal (s : Uml.Signal.t) =
  max 1 (((s.Uml.Signal.payload_bytes + 3) / 4) + List.length s.Uml.Signal.params)

(* ---- statement walking ------------------------------------------------ *)

let rec expr_names vars params = function
  | Efsm.Action.Int _ | Efsm.Action.Bool _ -> ()
  | Efsm.Action.Var v -> Hashtbl.replace vars v ()
  | Efsm.Action.Param p -> Hashtbl.replace params p ()
  | Efsm.Action.Neg e | Efsm.Action.Not e -> expr_names vars params e
  | Efsm.Action.Bin (_, a, b) ->
    expr_names vars params a;
    expr_names vars params b

(* All [Send] statements of a block, branches included. *)
let rec sends_of_stmts acc = function
  | [] -> acc
  | Efsm.Action.Send { port; signal; args } :: rest ->
    sends_of_stmts ((port, signal, args) :: acc) rest
  | Efsm.Action.If (_, t, e) :: rest ->
    sends_of_stmts (sends_of_stmts (sends_of_stmts acc t) e) rest
  | Efsm.Action.While (_, body) :: rest ->
    sends_of_stmts (sends_of_stmts acc body) rest
  | (Efsm.Action.Assign _ | Efsm.Action.Compute _) :: rest ->
    sends_of_stmts acc rest

let machine_send_sites (m : Efsm.Machine.t) =
  let blocks =
    List.map (fun (tr : Efsm.Machine.transition) -> tr.Efsm.Machine.actions)
      m.Efsm.Machine.transitions
    @ List.map snd m.Efsm.Machine.entry_actions
    @ List.map snd m.Efsm.Machine.exit_actions
  in
  List.concat_map (fun b -> sends_of_stmts [] b) blocks

(* ---- construction ----------------------------------------------------- *)

let intern_signal sigs sig_ids (s : Uml.Signal.t) =
  match Hashtbl.find_opt sig_ids s.Uml.Signal.name with
  | Some id -> id
  | None ->
    let id = List.length !sigs in
    Hashtbl.add sig_ids s.Uml.Signal.name id;
    sigs :=
      !sigs
      @ [
          {
            sg_name = s.Uml.Signal.name;
            sg_params = Array.of_list s.Uml.Signal.params;
            sg_words = words_of_signal s;
          };
        ];
    id

let build model =
  let network = Lint.Network.elaborate model in
  let machine_instances = Lint.Network.machine_instances network in
  let sigs = ref [] and sig_ids = Hashtbl.create 32 in
  List.iter
    (fun s -> ignore (intern_signal sigs sig_ids s))
    model.Uml.Model.signals;
  (* signals referenced by behaviour but not declared in the model (a
     lint error, but the checker must still terminate on such models) *)
  let intern_name name =
    match Hashtbl.find_opt sig_ids name with
    | Some id -> id
    | None -> intern_signal sigs sig_ids (Uml.Signal.make ~payload_bytes:4 name)
  in
  List.iter
    (fun (i : Lint.Network.instance) ->
      match i.Lint.Network.machine with
      | None -> ()
      | Some m ->
        List.iter (fun s -> ignore (intern_name s)) (Efsm.Machine.signals_consumed m);
        List.iter (fun (_, s) -> ignore (intern_name s)) (Efsm.Machine.signals_sent m))
    machine_instances;
  let ix_of_path = Hashtbl.create 16 in
  List.iteri
    (fun ix (i : Lint.Network.instance) ->
      Hashtbl.add ix_of_path i.Lint.Network.path ix)
    machine_instances;
  let progs = Hashtbl.create 8 in
  let prog_of class_name machine =
    match Hashtbl.find_opt progs class_name with
    | Some p -> p
    | None ->
      let p = Efsm.Compiled.compile machine in
      Hashtbl.add progs class_name p;
      p
  in
  let insts =
    Array.of_list
      (List.mapi
         (fun ix (i : Lint.Network.instance) ->
           let machine = Option.get i.Lint.Network.machine in
           let path = i.Lint.Network.path in
           let prog = prog_of i.Lint.Network.class_name machine in
           (* routes: one per distinct (port, signal) send site *)
           let routes = Hashtbl.create 8 in
           List.iter
             (fun (port, signal) ->
               let key = route_key port signal in
               if not (Hashtbl.mem routes key) then begin
                 let dests =
                   Lint.Network.receivers network ~sender:path ~port ~signal
                   |> List.filter_map (fun p -> Hashtbl.find_opt ix_of_path p)
                   |> Array.of_list
                 in
                 let env =
                   Lint.Network.env_absorbs network ~sender:path ~port ~signal
                 in
                 Hashtbl.add routes key
                   {
                     rt_port = port;
                     rt_signal = signal;
                     rt_gsig = intern_name signal;
                     rt_dests = dests;
                     rt_env = env;
                   }
               end)
             (Efsm.Machine.signals_sent machine);
           {
             ix;
             path;
             class_name = i.Lint.Network.class_name;
             machine;
             prog;
             routes;
             waits = [||] (* filled below, needs every instance's routes *);
             silent_on = [||];
             silent_after = [||];
             transitions = Array.of_list machine.Efsm.Machine.transitions;
           })
         machine_instances)
  in
  let n_sigs = Hashtbl.length sig_ids in
  (* -- silent-step tables (for partial-order reduction) --------------
     A step of instance [i] is *silent* when it provably emits nothing
     to another machine instance: every candidate transition's exit +
     action + entry blocks are machine-send-free and the target state's
     completion closure is quiet.  Environment-absorbed and routeless
     sends stay silent — they touch no other instance's queue. *)
  let stmts_machine_send_free inst stmts =
    List.for_all
      (fun (port, signal, _) ->
        match Hashtbl.find_opt inst.routes (route_key port signal) with
        | None -> true
        | Some r -> Array.length r.rt_dests = 0)
      (sends_of_stmts [] stmts)
  in
  let quiet_entry inst =
    (* quiet.(s): entering state s (entry actions + any chain of
       completion transitions) emits nothing to another machine.
       Greatest fixpoint: start optimistic, refute until stable. *)
    let m = inst.machine in
    let n = Efsm.Compiled.n_states inst.prog in
    let quiet = Array.make n true in
    let sid name = Option.get (Efsm.Compiled.state_id_of_name inst.prog name) in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun state ->
          let s = sid state in
          if quiet.(s) then begin
            let ok =
              stmts_machine_send_free inst (Efsm.Machine.entry_of m state)
              && List.for_all
                   (fun (tr : Efsm.Machine.transition) ->
                     match tr.Efsm.Machine.trigger with
                     | Efsm.Machine.Completion ->
                       stmts_machine_send_free inst (Efsm.Machine.exit_of m state)
                       && stmts_machine_send_free inst tr.Efsm.Machine.actions
                       && quiet.(sid tr.Efsm.Machine.target)
                     | Efsm.Machine.On_signal _ | Efsm.Machine.After _ -> true)
                   (Efsm.Machine.outgoing m state)
            in
            if not ok then begin
              quiet.(s) <- false;
              changed := true
            end
          end)
        m.Efsm.Machine.states
    done;
    quiet
  in
  let fill_silent inst =
    let m = inst.machine in
    let n = Efsm.Compiled.n_states inst.prog in
    let quiet = quiet_entry inst in
    let sid name = Option.get (Efsm.Compiled.state_id_of_name inst.prog name) in
    let silent_tr state (tr : Efsm.Machine.transition) =
      stmts_machine_send_free inst (Efsm.Machine.exit_of m state)
      && stmts_machine_send_free inst tr.Efsm.Machine.actions
      && quiet.(sid tr.Efsm.Machine.target)
    in
    let silent_on = Array.make_matrix n n_sigs true in
    let silent_after = Array.make n true in
    List.iter
      (fun state ->
        let s = sid state in
        let outs = Efsm.Machine.outgoing m state in
        let after_min = Efsm.Compiled.after_min_of inst.prog s in
        List.iter
          (fun (tr : Efsm.Machine.transition) ->
            match tr.Efsm.Machine.trigger with
            | Efsm.Machine.On_signal sg -> (
              match Hashtbl.find_opt sig_ids sg with
              | Some g ->
                if not (silent_tr state tr) then silent_on.(s).(g) <- false
              | None -> ())
            | Efsm.Machine.After d ->
              (* only minimum-delay transitions can fire on the armed
                 timer; longer ones never run from this state *)
              if d = after_min && not (silent_tr state tr) then
                silent_after.(s) <- false
            | Efsm.Machine.Completion -> ())
          outs)
      m.Efsm.Machine.states;
    { inst with silent_on; silent_after }
  in
  (* -- wait summaries (for deadlock detection) ----------------------- *)
  let fill_waits inst =
    let m = inst.machine in
    let n = Efsm.Compiled.n_states inst.prog in
    let waits = Array.make n None in
    List.iter
      (fun state ->
        let s = Option.get (Efsm.Compiled.state_id_of_name inst.prog state) in
        let outs = Efsm.Machine.outgoing m state in
        let triggers =
          List.filter_map
            (fun (tr : Efsm.Machine.transition) ->
              match tr.Efsm.Machine.trigger with
              | Efsm.Machine.On_signal sg -> Some sg
              | Efsm.Machine.After _ | Efsm.Machine.Completion -> None)
            outs
          |> List.sort_uniq compare
        in
        (* A wait candidate leaves only on signal reception: any timer
           is a permanent escape (it re-arms on every entry), and a
           completion transition, were it enabled, would already have
           fired during quiescence — its guard reads only variables,
           which cannot change while the instance takes no step. *)
        let has_after =
          List.exists
            (fun (tr : Efsm.Machine.transition) ->
              match tr.Efsm.Machine.trigger with
              | Efsm.Machine.After _ -> true
              | _ -> false)
            outs
        in
        if triggers <> [] && not has_after then begin
          let env =
            List.exists
              (fun sg ->
                Lint.Network.env_injects network ~receiver:inst.path ~signal:sg)
              triggers
          in
          let producers =
            List.map
              (fun sg ->
                Lint.Network.producers network ~receiver:inst.path ~signal:sg
                |> List.filter_map (fun p -> Hashtbl.find_opt ix_of_path p)
                |> Array.of_list)
              triggers
          in
          waits.(s) <-
            Some { w_env = env; w_producers = Array.of_list producers }
        end)
      m.Efsm.Machine.states;
    { inst with waits }
  in
  let insts = Array.map (fun i -> fill_waits (fill_silent i)) insts in
  (* -- environment inputs -------------------------------------------- *)
  let env_inputs =
    Array.to_list insts
    |> List.concat_map (fun inst ->
           Efsm.Machine.signals_consumed inst.machine
           |> List.filter (fun sg ->
                  Lint.Network.env_injects network ~receiver:inst.path
                    ~signal:sg)
           |> List.map (fun sg ->
                  {
                    ei_target = inst.ix;
                    ei_gsig = Hashtbl.find sig_ids sg;
                    ei_guard_read = false (* refined by {!Coi.apply} *);
                  }))
    |> Array.of_list
  in
  {
    model;
    network;
    insts;
    sigs = Array.of_list !sigs;
    sig_ids;
    env_inputs;
    ix_of_path;
  }

let n_insts t = Array.length t.insts
let sig_name t g = t.sigs.(g).sg_name
let sig_words t g = t.sigs.(g).sg_words

let canonical_args t g =
  Array.map
    (fun (_, ty) ->
      match ty with
      | Uml.Signal.P_int -> Efsm.Action.V_int 0
      | Uml.Signal.P_bool -> Efsm.Action.V_bool false)
    t.sigs.(g).sg_params

(* Positional values -> named bindings for {!Efsm.Compiled.dispatch},
   pairing like the code generator's runtime does. *)
let bind_args t g (values : Efsm.Action.value array) =
  let params = t.sigs.(g).sg_params in
  let n = min (Array.length params) (Array.length values) in
  List.init n (fun i -> (fst params.(i), values.(i)))

let find_route inst ~port ~signal =
  Hashtbl.find_opt inst.routes (route_key port signal)

(* ---- deadlock: blocked-set greatest fixpoint ------------------------- *)

(* Instances permanently stuck in the given global state: every member
   sits in a wait state with an empty queue, none of its trigger
   signals is environment-injectable, and every machine that could
   produce one of them is itself a member.  Sound because a member can
   only be woken by a delivery, deliveries come from the environment,
   from in-flight messages (excluded: queues are empty), or from
   producers — and all producers are stuck too.  Greatest fixpoint:
   start from all candidates and peel off anyone with a live escape. *)
let blocked_set t ~state_of ~queue_empty =
  let n = Array.length t.insts in
  let blocked = Array.make n false in
  Array.iter
    (fun inst ->
      match inst.waits.(state_of inst.ix) with
      | Some w when (not w.w_env) && queue_empty inst.ix ->
        blocked.(inst.ix) <- true
      | _ -> ())
    t.insts;
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun inst ->
        if blocked.(inst.ix) then
          match inst.waits.(state_of inst.ix) with
          | None -> ()
          | Some w ->
            let escaped =
              Array.exists
                (fun producers ->
                  Array.exists (fun j -> not blocked.(j)) producers)
                w.w_producers
            in
            if escaped then begin
              blocked.(inst.ix) <- false;
              changed := true
            end)
      t.insts
  done;
  let members = ref [] in
  for i = n - 1 downto 0 do
    if blocked.(i) then members := i :: !members
  done;
  !members

(* ---- engine-polymorphic executors ------------------------------------ *)
(* The explorer always runs the compiled engine (it needs id-level
   snapshots); counterexample emission and replay are parameterised so a
   trace can be validated under both engines. *)

type engine = Reference | Compiled

type exec =
  | E_ref of Efsm.Interp.t
  | E_comp of Efsm.Compiled.t

let make_exec engine inst =
  match engine with
  | Reference -> E_ref (Efsm.Interp.create inst.machine)
  | Compiled -> E_comp (Efsm.Compiled.create inst.prog)

let exec_state = function
  | E_ref i -> Efsm.Interp.state i
  | E_comp c -> Efsm.Compiled.state c

let exec_dispatch e ~signal ~args =
  match e with
  | E_ref i -> Efsm.Interp.dispatch i ~signal ~args
  | E_comp c -> Efsm.Compiled.dispatch c ~signal ~args

let exec_fire_timer e ~entered_state =
  match e with
  | E_ref i -> Efsm.Interp.fire_timer i ~entered_state
  | E_comp c -> Efsm.Compiled.fire_timer c ~entered_state

let exec_initial_entry = function
  | E_ref i -> Efsm.Interp.initial_entry i
  | E_comp c -> Efsm.Compiled.initial_entry c

let exec_run_completions = function
  | E_ref i -> Efsm.Interp.run_completions i
  | E_comp c -> Efsm.Compiled.run_completions c

let exec_timer_request = function
  | E_ref i -> Efsm.Interp.timer_request i
  | E_comp c -> Efsm.Compiled.timer_request c
