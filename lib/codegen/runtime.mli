(** Co-simulation runtime: executes an {!Ir.system} on the discrete-event
    kernel, with one RTOS scheduler per processing element and signal
    transport over the HIBI network.

    This stands in for the paper's "executable application" running on
    the FPGA platform (Figure 2, right column): computation effects are
    charged to the mapped PE (scaled by frequency and performance
    factor), inter-PE signals arbitrate for HIBI segments, and every
    execution burst / signal / state change is recorded in the
    simulation log ({!Sim.Trace}) for the profiling tool.

    Environment processes run outside the platform on an ideal PE; their
    execution is not logged (the paper's Table 4 reports the Environment
    group with 0 cycles) but their signals are. *)

type t

type engine_kind = Reference | Compiled
(** Which EFSM execution engine the processes run on.  [Reference] is
    the tree-walking {!Efsm.Interp} over a binary-heap event queue;
    [Compiled] executes {!Efsm.Compiled} bytecode over interned dispatch
    tables with a calendar event queue ({!Sim.Calendar}).  Both produce
    bit-identical traces — the differential suite and the CI engine
    matrix enforce it — so the choice is purely a speed/debuggability
    trade-off. *)

val create :
  ?trace:Sim.Trace.t ->
  ?faults:Fault.Injector.t ->
  ?obs:Obs.Scope.t ->
  ?flows:Obs.Flow.t ->
  ?engine:engine_kind ->
  Ir.system ->
  (t, string list) result
(** Builds PEs, the HIBI network and process instances; returns errors
    from {!Ir.check} or inconsistent wrappers.  [engine] selects the
    EFSM execution engine (default [Reference]).  [obs] is threaded through
    every layer (engine, schedulers, HIBI) and additionally receives
    per-process send/discard counters, the [app.exec_cycles_total]
    counter (cross-checkable against the profiling report) and one trace
    span per handled signal on the ["proc/<name>"] lane.

    [faults] arms the fault-injection subsystem: HIBI hops consult the
    injector (drop / corrupt / stall), PE crash and slowdown specs are
    scheduled at {!start}, and the fault-tolerance machinery switches
    on — inter-PE signals travel as CRC-32-framed messages under
    stop-and-wait ARQ (timeout, exponential backoff, [max_retries]),
    a periodic watchdog detects crashed PEs, and detection triggers
    degradation re-mapping when the plan's recovery says so.  An
    inactive (empty-plan) injector is ignored entirely: behaviour,
    traces and reports stay byte-identical to a fault-free run.

    [flows] enables causal flow tracing ({!Obs.Flow}): a flow id is
    minted per context-free signal emission, inherited by every signal
    sent while handling a flow-carrying event (fan-out through TUTMAC
    fragmentation/reassembly included), carried through RTOS jobs and
    HIBI transfers, and accounted per hop — queue wait, processing,
    bus transfer, ARQ retransmission — plus end-to-end on each delivery
    into an environment process.  Hops are also recorded as [Flow_hop]
    trace events, so a saved log can be replayed into the same report.
    Defaults to {!Obs.Flow.disabled}, which keeps traces, reports and
    timing byte-identical to an untraced run. *)

val engine : t -> Sim.Engine.t
val trace : t -> Sim.Trace.t
val system : t -> Ir.system

val start : t -> unit
(** Run initial completion transitions and arm initial timers of every
    process.  Call once before {!run}. *)

val run : t -> until_ns:int64 -> int
(** Advance simulated time; returns the number of events fired. *)

val inject :
  t -> dst:string -> signal:string -> args:(string * Efsm.Action.value) list -> unit
(** Deliver an external signal to a process (test stimulus). *)

val process_state : t -> string -> string option
val process_var : t -> string -> string -> Efsm.Action.value option

val pe_busy_ns : t -> (string * int64) list
val pe_executed_cycles : t -> (string * int64) list
val segment_stats : t -> (string * Hibi.Network.segment_stats) list
val queue_latencies : t -> (string * (int * float * int64)) list
(** Per process: [(events handled, mean queueing wait ns, max wait ns)] —
    the time signal events spend in the input queue before the EFSM
    dispatches them.  Scheduling policy changes these latencies even when
    total work is identical. *)

val queue_high_water : t -> (string * int) list
(** Per process: peak input-queue depth (pending signals), read straight
    from the mailbox ring's high-water mark; sorted by process name. *)

val pe_queue_high_water : t -> (string * int) list
(** Per PE (the environment pseudo-PE included): peak ready-queue length
    of its scheduler ({!Sim.Rtos}), sorted by PE name.  Maintained by the
    schedulers themselves — available with no metrics scope attached. *)

val runtime_errors : t -> string list
(** Routing failures observed during execution (should stay empty for a
    validated model). *)

(** Fault tolerance (active only when [create] received an active
    injector). *)

val fault_stats : t -> Fault.Stats.t option
(** The injector's shared counter record, including the runtime-side
    detection/recovery counts; [None] when faults are off. *)

val set_remap_hook :
  t -> (dead_pe:string -> survivors:string list -> (string * string) list) -> unit
(** Override degradation placement: on watchdog detection of [dead_pe]
    the hook receives the surviving PEs and returns [(process, pe)]
    placements for the dead PE's processes.  Processes it leaves out
    (or maps to a dead PE) fall back to the first survivor.  Without a
    hook the runtime round-robins processes over survivors in sorted
    order.  No-op when faults are off. *)

val process_pe : t -> string -> string option
(** The PE a process is currently mapped to (tracking degradation
    re-mapping); [None] for unknown or environment processes. *)

val flows : t -> Obs.Flow.t
(** The causal flow tracker (the disabled default unless [create]
    received one). *)
