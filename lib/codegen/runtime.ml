type engine_kind = Reference | Compiled

(* One process's EFSM stepper.  Both variants implement the identical
   reactive contract ({!Efsm.Interp} documents it; {!Efsm.Compiled}
   mirrors it bit for bit), so everything downstream of the step —
   effects, traces, flows, faults — is shared and the two engines
   cannot drift apart structurally. *)
type exec =
  | Exec_interp of Efsm.Interp.t
  | Exec_compiled of Efsm.Compiled.t

let exec_state = function
  | Exec_interp i -> Efsm.Interp.state i
  | Exec_compiled c -> Efsm.Compiled.state c

let exec_timer_request = function
  | Exec_interp i -> Efsm.Interp.timer_request i
  | Exec_compiled c -> Efsm.Compiled.timer_request c

let exec_initial_entry = function
  | Exec_interp i -> Efsm.Interp.initial_entry i
  | Exec_compiled c -> Efsm.Compiled.initial_entry c

let exec_run_completions = function
  | Exec_interp i -> Efsm.Interp.run_completions i
  | Exec_compiled c -> Efsm.Compiled.run_completions c

let exec_read_var exec name =
  match exec with
  | Exec_interp i -> Efsm.Interp.read_var i name
  | Exec_compiled c -> Efsm.Compiled.read_var c name

(* Native-int accumulators: queueing waits fit the 63-bit ns clock and
   bumping them per handled event must not box. *)
type queue_stats = {
  mutable handled : int;
  mutable total_wait_ns : int;
  mutable max_wait_ns : int;
}

(* A pending signal is one row of the process's flat mailbox ring: the
   three int lanes carry (interned signal id, flow id, enqueued-at ns)
   and the payload lane carries the named trigger arguments — no heap
   record per queued event. *)
type proc_rt = {
  decl : Ir.proc_decl;
  name_id : int;  (** process name interned in the runtime's trace *)
  exec : exec;
  queue : (string * Efsm.Action.value) list Sim.Mailbox.Flat.t;
      (** lanes: a = interned signal id, b = flow id, c = enqueued_at *)
  mutable busy : bool;
  mutable timer : Sim.Engine.handle;
      (** outstanding After-timer event; [Sim.Engine.never] when none *)
  mutable armed_state : string;
      (** state the timer was armed in; stale firings are discarded *)
  mutable timer_fire : unit -> unit;
      (** shared per-process timer callback (wired after [create] builds
          the runtime record), so re-arming allocates no closure *)
  mutable sched : Sim.Rtos.t;
      (** scheduler of the PE the process currently runs on (the
          environment scheduler for env processes); refreshed on
          degradation re-mapping so the hot path never re-resolves it *)
  mutable eff_rest : Efsm.Action.effect list;
      (** effects left in a list-backed chain; see [eff_cont] *)
  mutable eff_idx : int;
      (** next effect in a buffer-backed (compiled) chain *)
  mutable eff_k : unit -> unit;  (** continuation after the chain *)
  mutable eff_cycles : int;  (** cycles of the burst in flight *)
  mutable eff_cont : unit -> unit;
      (** shared compute-burst completion for list-backed chains:
          records the burst and resumes [eff_rest]; one outstanding
          chain per process ([busy]) makes a single cell per process
          enough *)
  mutable eff_cont_b : unit -> unit;
      (** ditto for buffer-backed chains, resuming at [eff_idx] *)
  mutable sig_map : int array;
      (** compiled engine: trace signal id -> VM dispatch-table id
          (memo; -2 unresolved, -1 not a signal of this machine), so
          steady-state dispatch never hashes a signal name *)
  mutable finish_fn : unit -> unit;
      (** shared end-of-dispatch continuation (unbusy, re-arm, pump) *)
  mutable current_flow : int;
      (** flow of the event being handled: sends made while handling it
          inherit this id (causal propagation); -1 outside handling *)
  stats : queue_stats;
  track : string;  (** tracing lane, "proc/<name>" *)
  routes : (string, (string, route) Hashtbl.t) Hashtbl.t;
      (** port -> signal -> precompiled route; the same destinations /
          payload words / parameter names {!Ir.destinations},
          {!Ir.signal_words} and {!Ir.signal_params} would compute,
          resolved once at load instead of scanned per send.  Nested
          tables (rather than a [(port, signal)] key) so the per-send
          lookup allocates no key tuple. *)
  m_sends : Obs.Metrics.counter;
  m_discards : Obs.Metrics.counter;
}

and route = {
  r_dests : string list;  (** bindings order, like [Ir.destinations] *)
  r_words : int;
  r_params : string array;  (** receiver parameter names, positional *)
  r_sig_id : int;  (** the signal, interned *)
  mutable r_targets : target array;
      (** [r_dests] with name ids and process instances resolved — a
          second pass fills this once the process table exists *)
}

and target = {
  tgt_name : string;
  tgt_name_id : int;
  tgt_proc : proc_rt option;  (** [None] = unknown destination *)
}

(* One in-flight ARQ exchange: a CRC-framed inter-PE message with a
   retransmission timer.  The "ack" is implicit and instant — when the
   receiver's CRC check passes, the sender's timer is cancelled — a
   stop-and-wait ARQ with a free reverse channel. *)
type arq_entry = {
  a_id : int;
  a_payload : string;  (** original payload, for residual detection *)
  a_frame : string;  (** payload + CRC-32 trailer as sent *)
  a_words : int;  (** payload words + one trailer word *)
  a_sender : string;
  a_receiver : string;
  a_signal : string;
  a_flow : int;  (** causal flow id of the framed message; -1 = none *)
  mutable a_attempts : int;  (** retransmissions so far *)
  mutable a_timer : Sim.Engine.handle option;
  mutable a_done : bool;  (** delivered intact at least once *)
  a_deliver : unit -> unit;
}

type fault_rt = {
  injector : Fault.Injector.t;
  fstats : Fault.Stats.t;
  recovery : Fault.Plan.recovery;
  pe_override : (string, string) Hashtbl.t;
      (** process -> PE it was re-mapped onto after a crash *)
  mutable undetected_crashes : (string * int64) list;
      (** crashed PEs the watchdog has not noticed yet, with crash time *)
  mutable next_msg_id : int;
  mutable remap_hook :
    (dead_pe:string -> survivors:string list -> (string * string) list) option;
}

type t = {
  sys : Ir.system;
  engine : Sim.Engine.t;
  trace : Sim.Trace.t;
  network : Hibi.Network.t;
  rtos : (string, Sim.Rtos.t) Hashtbl.t;  (** PE name -> scheduler *)
  env_rtos : Sim.Rtos.t;
  procs : (string, proc_rt) Hashtbl.t;
  faults : fault_rt option;
  mutable errors : string list;
  tracer : Obs.Tracer.t;
  obs_on : bool;
  trace_on : bool;
  flows : Obs.Flow.t;
  flows_on : bool;
  (* Ids interned once at load so the hot emit sites append plain ints. *)
  timeout_id : int;
  st_born : int;
  st_queue : int;
  st_process : int;
  st_transfer : int;
  st_retransmit : int;
  st_end : int;
  overhead_eff : Efsm.Action.effect;
      (** [Eff_compute dispatch_overhead_cycles], shared by every event *)
  overhead_cycles : int;  (** same value unwrapped, for the cursor path *)
  m_exec_cycles : Obs.Metrics.counter;
      (** cycles of application (non-environment) execution — matches the
          report's total, see {!Profiler.Report.cross_check} *)
  m_signals : Obs.Metrics.counter;
  m_discard_total : Obs.Metrics.counter;
}

(* Timer expiries are queued like signals so a busy process finishes its
   current event first; the marker never collides with model signals. *)
let timeout_signal = "__timeout__"

let engine t = t.engine
let trace t = t.trace
let system t = t.sys
let runtime_errors t = List.rev t.errors

(* The PE a process currently runs on: its mapped PE unless degradation
   re-mapping moved it after a crash.  The fault-free path returns the
   stored option as-is — no [Some] is rebuilt per query (this runs once
   per compute effect and twice per signal hop). *)
let effective_pe t (proc : proc_rt) =
  match t.faults with
  | None -> proc.decl.Ir.pe
  | Some f -> (
    match proc.decl.Ir.pe with
    | None -> None
    | Some _ -> (
      match Hashtbl.find f.pe_override proc.decl.Ir.proc_name with
      | moved -> Some moved
      | exception Not_found -> proc.decl.Ir.pe))

let rtos_of t (proc : proc_rt) =
  match effective_pe t proc with
  | None -> t.env_rtos
  | Some pe -> (
    match Hashtbl.find t.rtos pe with
    | r -> r
    | exception Not_found -> t.env_rtos)

let is_env (proc : proc_rt) =
  match proc.decl.Ir.pe with None -> true | Some _ -> false

let record_fault t ~kind ~target ~info =
  Sim.Trace.record t.trace
    (Sim.Trace.Fault
       { time = Sim.Engine.now t.engine; kind; target; info })

let record_exec_i t proc cycles =
  if not (is_env proc) then begin
    if t.obs_on then Obs.Metrics.inc ~by:cycles t.m_exec_cycles;
    Sim.Trace.record_exec t.trace ~time:(Sim.Engine.now_ns t.engine)
      ~process:proc.name_id ~cycles
  end

let same_pe t a b =
  match effective_pe t a, effective_pe t b with
  | Some x, Some y -> x = y
  | None, _ | _, None -> true
  (* environment delivery is local: the env agent sits conceptually next
     to whatever boundary hardware it stimulates *)

let local_delivery_ns = 100

(* Trace signal id -> compiled dispatch-table id, memoised per process:
   after the first delivery of each signal the hot path never hashes a
   signal name again. *)
let vm_sid t proc vm sig_id =
  (if sig_id >= Array.length proc.sig_map then begin
     let m = Array.make ((2 * sig_id) + 8) (-2) in
     Array.blit proc.sig_map 0 m 0 (Array.length proc.sig_map);
     proc.sig_map <- m
   end);
  let sid = proc.sig_map.(sig_id) in
  if sid <> -2 then sid
  else begin
    let sid = Efsm.Compiled.signal_id vm (Sim.Trace.interned t.trace sig_id) in
    proc.sig_map.(sig_id) <- sid;
    sid
  end

let rec pump t proc =
  if (not proc.busy) && not (Sim.Mailbox.Flat.is_empty proc.queue) then begin
    let sig_id = Sim.Mailbox.Flat.head_a proc.queue in
    let flow = Sim.Mailbox.Flat.head_b proc.queue in
    let enqueued_at = Sim.Mailbox.Flat.head_c proc.queue in
    let args = Sim.Mailbox.Flat.pop proc.queue in
    let now = Sim.Engine.now_ns t.engine in
    let wait = now - enqueued_at in
    proc.stats.handled <- proc.stats.handled + 1;
    proc.stats.total_wait_ns <- proc.stats.total_wait_ns + wait;
    if wait > proc.stats.max_wait_ns then proc.stats.max_wait_ns <- wait;
    proc.current_flow <- flow;
    if t.flows_on && flow >= 0 then begin
      Obs.Flow.hop_ns t.flows ~flow ~stage:Obs.Flow.Queue_wait ~dur_ns:wait;
      Sim.Trace.record_flow_hop t.trace ~time:now ~flow ~stage:t.st_queue
        ~where_:proc.name_id ~dur:wait
    end;
    proc.busy <- true;
    let before_state = exec_state proc.exec in
    let is_timeout = sig_id = t.timeout_id in
    (* Compiled instances dispatch by pre-resolved table id and leave
       the effects in the VM's buffer (walked in place by
       [run_effects_c]); the reference interpreter keeps its step/list
       contract.  Both paths fire the same transitions. *)
    let fired =
      match proc.exec with
      | Exec_compiled vm ->
        if is_timeout then
          Efsm.Compiled.fire_timer_id vm ~entered_state:before_state
        else
          Efsm.Compiled.dispatch_id vm ~sid:(vm_sid t proc vm sig_id) ~args
      | Exec_interp i ->
        let step =
          if is_timeout then
            Efsm.Interp.fire_timer i ~entered_state:before_state
          else
            Efsm.Interp.dispatch i
              ~signal:(Sim.Trace.interned t.trace sig_id)
              ~args
        in
        (match step.Efsm.Interp.fired with
        | None -> false
        | Some _ ->
          proc.eff_rest <- step.Efsm.Interp.effects;
          true)
    in
    match fired with
    | false ->
      if (not is_timeout) && not (is_env proc) then begin
        (if t.obs_on then begin
           Obs.Metrics.inc proc.m_discards;
           Obs.Metrics.inc t.m_discard_total
         end);
        if t.trace_on then
          Obs.Tracer.instant t.tracer ~ts_ns:(Int64.of_int now)
            ~cat:"app" ~track:proc.track
            ~args:
              [ ("signal", Obs.Span.Str (Sim.Trace.interned t.trace sig_id)) ]
            "discard";
        Sim.Trace.record_discard t.trace ~time:now ~process:proc.name_id
          ~signal:sig_id
      end;
      proc.busy <- false;
      pump t proc
    | true ->
      let after_state = exec_state proc.exec in
      if not (is_env proc) then
        Sim.Trace.record_state_change t.trace ~time:now
          ~process:proc.name_id
          ~from_:(Sim.Trace.intern t.trace before_state)
          ~to_:(Sim.Trace.intern t.trace after_state);
      (* Only build the span/flow-emitting continuation when observing;
         the common path reuses the process's lifetime continuation. *)
      let k =
        if (t.trace_on || (t.flows_on && flow >= 0)) && not (is_env proc)
        then begin
          let handled_at = now in
          fun () ->
            let now = Sim.Engine.now_ns t.engine in
            let dur = now - handled_at in
            if t.trace_on then
              Obs.Tracer.complete t.tracer ~ts_ns:(Int64.of_int handled_at)
                ~dur_ns:(Int64.of_int dur) ~cat:"app" ~track:proc.track
                ~args:[ ("to_state", Obs.Span.Str after_state) ]
                (if is_timeout then "timeout"
                 else Sim.Trace.interned t.trace sig_id);
            if t.flows_on && flow >= 0 then begin
              Obs.Flow.hop_ns t.flows ~flow ~stage:Obs.Flow.Process
                ~dur_ns:dur;
              Sim.Trace.record_flow_hop t.trace ~time:now ~flow
                ~stage:t.st_process ~where_:proc.name_id ~dur
            end;
            proc.finish_fn ()
        end
        else proc.finish_fn
      in
      (* Every handled event is charged the dispatch overhead burst
         before its own effects run. *)
      (match proc.exec with
      | Exec_compiled _ ->
        proc.eff_idx <- 0;
        proc.eff_k <- k;
        proc.eff_cycles <- t.overhead_cycles;
        Sim.Rtos.submit_i proc.sched ~task:proc.decl.Ir.proc_name
          ~priority:proc.decl.Ir.priority ~flow:proc.current_flow
          ~cycles:t.overhead_cycles proc.eff_cont_b
      | Exec_interp _ ->
        run_effects t proc (t.overhead_eff :: proc.eff_rest) k)
  end

and run_effects t proc effects k =
  match effects with
  | [] -> k ()
  | Efsm.Action.Eff_compute cycles :: rest ->
    (* Park the chain state on the process and reuse its lifetime
       continuation: a compute burst submits with zero closure
       allocations.  Sound because [busy] serialises effect chains —
       at most one is outstanding per process. *)
    proc.eff_rest <- rest;
    proc.eff_k <- k;
    proc.eff_cycles <- cycles;
    Sim.Rtos.submit_i proc.sched ~task:proc.decl.Ir.proc_name
      ~priority:proc.decl.Ir.priority ~flow:proc.current_flow ~cycles
      proc.eff_cont
  | Efsm.Action.Eff_send { port; signal; args } :: rest ->
    send t proc ~port ~signal ~args;
    run_effects t proc rest k

(* Buffer-backed twin of [run_effects] for compiled instances: walks
   the VM's effect buffer by index, so a fired transition allocates no
   effect list and no per-burst closure. *)
and run_effects_c t proc vm i k =
  if i >= Efsm.Compiled.effect_count vm then k ()
  else
    match Efsm.Compiled.effect_at vm i with
    | Efsm.Action.Eff_compute cycles ->
      proc.eff_idx <- i + 1;
      proc.eff_k <- k;
      proc.eff_cycles <- cycles;
      Sim.Rtos.submit_i proc.sched ~task:proc.decl.Ir.proc_name
        ~priority:proc.decl.Ir.priority ~flow:proc.current_flow ~cycles
        proc.eff_cont_b
    | Efsm.Action.Eff_send { port; signal; args } ->
      send t proc ~port ~signal ~args;
      run_effects_c t proc vm (i + 1) k

(* A send with no binding still needs words/params/a trace id; built on
   the (cold) miss path only. *)
and missing_route t signal =
  {
    r_dests = [];
    r_words = Ir.signal_words t.sys signal;
    r_params = Array.of_list (Ir.signal_params t.sys signal);
    r_sig_id = Sim.Trace.intern t.trace signal;
    r_targets = [||];
  }

and send t proc ~port ~signal ~args =
  let route =
    match Hashtbl.find proc.routes port with
    | by_signal -> (
      match Hashtbl.find by_signal signal with
      | r -> r
      | exception Not_found -> missing_route t signal)
    | exception Not_found -> missing_route t signal
  in
  if Array.length route.r_targets = 0 then
    t.errors <-
      Printf.sprintf "no binding for %s.%s!%s" proc.decl.Ir.proc_name port signal
      :: t.errors;
  let words = route.r_words in
  (* Positional send arguments become the named trigger parameters the
     receiving machine declared for this signal. *)
  let named_args =
    List.mapi
      (fun i value ->
        if i < Array.length route.r_params then (route.r_params.(i), value)
        else (Printf.sprintf "arg%d" i, value))
      args
  in
  (* The first (non-negative) integer argument is recorded as the
     correlation tag — for TUTMAC that is the MSDU/PDU sequence number,
     which lets the profiler compute end-to-end latencies. *)
  let tag =
    match args with
    | Efsm.Action.V_int n :: _ when n >= 0 -> n
    | _ -> -1
  in
  (* Causal propagation: a send made while handling a flow-carrying
     event rides that flow; a send with no inherited context (an
     environment stimulus, a timer-driven transmission opportunity)
     births a new flow — its traffic class is this signal. *)
  let msg_flow =
    if not t.flows_on then -1
    else if proc.current_flow >= 0 then proc.current_flow
    else begin
      let now = Sim.Engine.now_ns t.engine in
      let id = Obs.Flow.mint t.flows ~now:(Int64.of_int now) ~origin:signal in
      Sim.Trace.record_flow_hop t.trace ~time:now ~flow:id ~stage:t.st_born
        ~where_:route.r_sig_id ~dur:0;
      id
    end
  in
  Array.iter
    (fun tgt ->
      match tgt.tgt_proc with
      | None ->
        t.errors <-
          Printf.sprintf "unknown destination %s" tgt.tgt_name :: t.errors
      | Some dst ->
        (if t.obs_on then begin
           Obs.Metrics.inc proc.m_sends;
           Obs.Metrics.inc t.m_signals
         end);
        Sim.Trace.record_signal t.trace
          ~time:(Sim.Engine.now_ns t.engine)
          ~sender:proc.name_id ~receiver:tgt.tgt_name_id
          ~signal:route.r_sig_id ~words ~tag;
        let base_deliver () =
          Sim.Mailbox.Flat.push dst.queue route.r_sig_id msg_flow
            (Sim.Engine.now_ns t.engine)
            named_args;
          pump t dst
        in
        let deliver =
          if msg_flow < 0 then base_deliver
          else begin
            (* Flow accounting happens at actual delivery time: the
               transfer stage is the bus latency (incl. ARQ rounds), and
               a delivery into an environment process completes the
               flow's end-to-end path for this terminal signal. *)
            let sent_at = Sim.Engine.now_ns t.engine in
            let remote = not (same_pe t proc dst) in
            fun () ->
              let now = Sim.Engine.now_ns t.engine in
              (if remote then begin
                 let dur = now - sent_at in
                 Obs.Flow.hop_ns t.flows ~flow:msg_flow
                   ~stage:Obs.Flow.Transfer ~dur_ns:dur;
                 Sim.Trace.record_flow_hop t.trace ~time:now ~flow:msg_flow
                   ~stage:t.st_transfer ~where_:tgt.tgt_name_id ~dur
               end);
              (if is_env dst then
                 match
                   Obs.Flow.complete t.flows ~flow:msg_flow
                     ~now:(Int64.of_int now) ~terminal:signal
                 with
                 | None -> ()
                 | Some e2e ->
                   Sim.Trace.record_flow_hop t.trace ~time:now ~flow:msg_flow
                     ~stage:t.st_end ~where_:route.r_sig_id
                     ~dur:(Int64.to_int e2e));
              base_deliver ()
          end
        in
        if same_pe t proc dst then
          local_deliver t ~dst_name:tgt.tgt_name ~signal deliver
        else begin
          match t.faults with
          | Some f when Fault.Injector.active f.injector ->
            arq_send t f ~src_proc:proc ~dst_proc:dst ~signal ~words
              ~flow:msg_flow deliver
          | Some _ | None -> (
            let src_pe = Option.get (effective_pe t proc) in
            let dst_pe = Option.get (effective_pe t dst) in
            match
              Hibi.Network.send ~flow:msg_flow t.network ~src:src_pe
                ~dst:dst_pe ~words ~on_delivered:deliver
            with
            | Ok () -> ()
            | Error e ->
              t.errors <- Printf.sprintf "hibi: %s" e :: t.errors;
              (* Fall back to local delivery so the simulation continues. *)
              ignore
                (Sim.Engine.schedule_ns t.engine ~delay:local_delivery_ns
                   deliver))
        end)
    route.r_targets

(* Local (same-PE) deliveries bypass the bus, so HIBI faults don't touch
   them; the signal loss/duplication injectors model software faults
   (queue overruns, double interrupts) on exactly this path. *)
and local_deliver t ~dst_name ~signal deliver =
  let schedule () =
    ignore (Sim.Engine.schedule_ns t.engine ~delay:local_delivery_ns deliver)
  in
  match t.faults with
  | Some f when Fault.Injector.active f.injector -> (
    match
      Fault.Injector.signal_fate f.injector ~now:(Sim.Engine.now t.engine)
        ~process:dst_name
    with
    | Fault.Injector.Deliver -> schedule ()
    | Fault.Injector.Lose ->
      record_fault t ~kind:"signal_loss" ~target:dst_name ~info:signal
    | Fault.Injector.Duplicate ->
      record_fault t ~kind:"signal_dup" ~target:dst_name ~info:signal;
      schedule ();
      schedule ())
  | Some _ | None -> schedule ()

(* Inter-PE messages under fault injection go through stop-and-wait ARQ:
   the payload is CRC-32 framed, the receiver only accepts frames whose
   trailer checks out, and the sender retransmits on timeout with
   exponential backoff until [max_retries] is exhausted. *)
and arq_send t f ~src_proc ~dst_proc ~signal ~words ~flow deliver =
  let id = f.next_msg_id in
  f.next_msg_id <- id + 1;
  (* Deterministic stand-in payload: the model layer carries symbolic
     arguments, but the integrity machinery needs real bytes to frame,
     flip and checksum. *)
  let payload =
    String.init (words * 4) (fun i ->
        Char.chr ((((id + 1) * 131) + (i * 29)) land 0xff))
  in
  let entry =
    {
      a_id = id;
      a_payload = payload;
      a_frame = Crc.Crc32.frame payload;
      a_words = words + 1;
      a_sender = src_proc.decl.Ir.proc_name;
      a_receiver = dst_proc.decl.Ir.proc_name;
      a_signal = signal;
      a_flow = flow;
      a_attempts = 0;
      a_timer = None;
      a_done = false;
      a_deliver = deliver;
    }
  in
  arq_attempt t f ~src_proc ~dst_proc entry

and arq_attempt t f ~src_proc ~dst_proc entry =
  let attempt = entry.a_attempts in
  (* PEs are looked up per attempt: a retransmission after degradation
     re-mapping chases the receiver to its new home. *)
  let src_pe = Option.get (effective_pe t src_proc) in
  let dst_pe = Option.get (effective_pe t dst_proc) in
  let on_outcome outcome = arq_receive t f entry ~attempt ~dst_pe outcome in
  (match
     Hibi.Network.transfer ~flow:entry.a_flow t.network ~src:src_pe
       ~dst:dst_pe ~words:entry.a_words ~on_outcome
   with
  | Ok () -> ()
  | Error e ->
    t.errors <- Printf.sprintf "hibi: %s" e :: t.errors;
    ignore
      (Sim.Engine.schedule_ns t.engine ~delay:local_delivery_ns (fun () ->
           on_outcome Hibi.Network.Delivered)));
  let backoff =
    Int64.shift_left f.recovery.Fault.Plan.ack_timeout_ns (min attempt 20)
  in
  entry.a_timer <-
    Some
      (Sim.Engine.schedule t.engine ~delay:backoff (fun () ->
           arq_timeout t f ~src_proc ~dst_proc entry))

and arq_timeout t f ~src_proc ~dst_proc entry =
  entry.a_timer <- None;
  if not entry.a_done then
    if entry.a_attempts >= f.recovery.Fault.Plan.max_retries then begin
      f.fstats.Fault.Stats.arq_giveups <- f.fstats.Fault.Stats.arq_giveups + 1;
      record_fault t ~kind:"arq_giveup" ~target:entry.a_receiver
        ~info:entry.a_signal
    end
    else begin
      entry.a_attempts <- entry.a_attempts + 1;
      f.fstats.Fault.Stats.retransmits <- f.fstats.Fault.Stats.retransmits + 1;
      Sim.Trace.record t.trace
        (Sim.Trace.Retransmit
           {
             time = Sim.Engine.now t.engine;
             sender = entry.a_sender;
             receiver = entry.a_receiver;
             signal = entry.a_signal;
             attempt = entry.a_attempts;
           });
      if t.flows_on && entry.a_flow >= 0 then begin
        (* The delay this retry adds is (at least) the timeout window
           that just expired — the backoff armed for the previous
           attempt. *)
        let expired =
          Int64.shift_left f.recovery.Fault.Plan.ack_timeout_ns
            (min (entry.a_attempts - 1) 20)
        in
        Obs.Flow.hop t.flows ~flow:entry.a_flow ~stage:Obs.Flow.Retransmit
          ~dur_ns:expired;
        Sim.Trace.record t.trace
          (Sim.Trace.Flow_hop
             {
               time = Sim.Engine.now t.engine;
               flow = entry.a_flow;
               stage = "retransmit";
               where_ = entry.a_receiver;
               dur = expired;
             })
      end;
      arq_attempt t f ~src_proc ~dst_proc entry
    end

and arq_receive t f entry ~attempt ~dst_pe outcome =
  let dst_dead =
    match Hashtbl.find_opt t.rtos dst_pe with
    | Some r -> Sim.Rtos.crashed r
    | None -> false
  in
  (* A crashed PE cannot receive: the frame dies at the wrapper and the
     sender's timeout machinery takes over. *)
  if not dst_dead then begin
    let frame' =
      match outcome with
      | Hibi.Network.Delivered -> entry.a_frame
      | Hibi.Network.Corrupted_delivery ->
        Fault.Injector.corrupt_frame f.injector
          ~salt:((entry.a_id lsl 6) lor (attempt land 63))
          entry.a_frame
    in
    (* The integrity check runs on the receiving PE's clock, at the CRC
       accelerator's cycle cost. *)
    let delay =
      match Hashtbl.find_opt t.rtos dst_pe with
      | Some r ->
        Sim.Rtos.cycles_to_ns r
          (Crc.Crc32.accelerator_cycles ~bytes_len:(String.length frame'))
      | None -> 20L
    in
    ignore
      (Sim.Engine.schedule t.engine ~delay (fun () -> arq_check t f entry frame'))
  end

and arq_check t f entry frame' =
  match Crc.Crc32.deframe frame' with
  | None ->
    f.fstats.Fault.Stats.crc_rejects <- f.fstats.Fault.Stats.crc_rejects + 1;
    record_fault t ~kind:"crc_reject" ~target:entry.a_receiver
      ~info:entry.a_signal
  | Some payload ->
    if entry.a_done then
      (* A stalled or retransmitted copy of an already-accepted message:
         suppressed by the sequence check. *)
      f.fstats.Fault.Stats.arq_duplicates <-
        f.fstats.Fault.Stats.arq_duplicates + 1
    else begin
      entry.a_done <- true;
      (match entry.a_timer with
      | Some h -> Sim.Engine.cancel h
      | None -> ());
      entry.a_timer <- None;
      if payload <> entry.a_payload then begin
        (* The CRC matched a corrupted frame: residual undetected error,
           delivered wrong — the metric the profiler must not hide. *)
        f.fstats.Fault.Stats.crc_residual <-
          f.fstats.Fault.Stats.crc_residual + 1;
        record_fault t ~kind:"crc_residual" ~target:entry.a_receiver
          ~info:entry.a_signal
      end
      else if entry.a_attempts > 0 then
        f.fstats.Fault.Stats.arq_acked <- f.fstats.Fault.Stats.arq_acked + 1;
      entry.a_deliver ()
    end

and arm_timer t proc =
  (* One outstanding timer per process: firing a transition re-enters a
     state, which restarts its After timer (UML state-entry semantics).
     Re-arming cancels the previous arming (so the shared [timer_fire]
     callback always refers to the latest one, with [armed_state]
     discarding firings that raced a state change) and reuses its
     handle when the backend allows. *)
  match exec_timer_request proc.exec with
  | None ->
    Sim.Engine.cancel proc.timer;
    proc.timer <- Sim.Engine.never
  | Some delay_ns ->
    proc.armed_state <- exec_state proc.exec;
    proc.timer <-
      Sim.Engine.rearm_ns t.engine proc.timer ~delay:delay_ns proc.timer_fire

(* Graceful degradation: move every process of the dead PE onto the
   surviving PEs.  The placement comes from the installed hook (the
   scenario layer wires a DSE-backed one) with a deterministic
   round-robin fallback; processes wedged on a job the dead PE discarded
   are unblocked so they resume from their queues. *)
let do_remap t f ~dead_pe =
  let survivors =
    Hashtbl.fold
      (fun name r acc -> if Sim.Rtos.crashed r then acc else name :: acc)
      t.rtos []
    |> List.sort compare
  in
  if survivors <> [] then begin
    let moved =
      Hashtbl.fold
        (fun name proc acc ->
          if (not (is_env proc)) && effective_pe t proc = Some dead_pe then
            (name, proc) :: acc
          else acc)
        t.procs []
      |> List.sort compare
    in
    let placed =
      match f.remap_hook with
      | Some hook ->
        let chosen = hook ~dead_pe ~survivors in
        List.map
          (fun (name, proc) ->
            let pe =
              match List.assoc_opt name chosen with
              | Some pe when List.mem pe survivors -> pe
              | Some _ | None -> List.hd survivors
            in
            (name, proc, pe))
          moved
      | None ->
        List.mapi
          (fun i (name, proc) ->
            (name, proc, List.nth survivors (i mod List.length survivors)))
          moved
    in
    List.iter
      (fun (name, proc, pe) ->
        Hashtbl.replace f.pe_override name pe;
        proc.sched <- rtos_of t proc;
        f.fstats.Fault.Stats.remapped_processes <-
          f.fstats.Fault.Stats.remapped_processes + 1;
        record_fault t ~kind:"remap" ~target:name ~info:pe;
        proc.busy <- false;
        pump t proc)
      placed
  end

let rec watchdog_tick t f =
  let period = f.recovery.Fault.Plan.watchdog_period_ns in
  if period > 0L then
    ignore
      (Sim.Engine.schedule t.engine ~delay:period (fun () ->
           let now = Sim.Engine.now t.engine in
           let pending = List.sort compare f.undetected_crashes in
           f.undetected_crashes <- [];
           List.iter
             (fun (pe, crashed_at) ->
               f.fstats.Fault.Stats.watchdog_detections <-
                 f.fstats.Fault.Stats.watchdog_detections + 1;
               f.fstats.Fault.Stats.recovery_latencies_ns <-
                 Int64.sub now crashed_at
                 :: f.fstats.Fault.Stats.recovery_latencies_ns;
               record_fault t ~kind:"watchdog_detect" ~target:pe ~info:"-";
               if f.recovery.Fault.Plan.remap then do_remap t f ~dead_pe:pe)
             pending;
           watchdog_tick t f))

(* Arm the plan's PE faults on the event queue (simulated time 0 is
   "now" at [start]). *)
let schedule_pe_faults t f =
  List.iter
    (fun (pe, at_ns) ->
      match Hashtbl.find_opt t.rtos pe with
      | None -> ()
      | Some r ->
        ignore
          (Sim.Engine.schedule t.engine ~delay:at_ns (fun () ->
               if not (Sim.Rtos.crashed r) then begin
                 Sim.Rtos.crash r;
                 f.fstats.Fault.Stats.pe_crashes <-
                   f.fstats.Fault.Stats.pe_crashes + 1;
                 f.undetected_crashes <-
                   (pe, Sim.Engine.now t.engine) :: f.undetected_crashes;
                 record_fault t ~kind:"pe_crash" ~target:pe ~info:"-"
               end)))
    (Fault.Injector.pe_crashes f.injector);
  List.iter
    (fun (pe, factor, from_ns, until_ns) ->
      match Hashtbl.find_opt t.rtos pe with
      | None -> ()
      | Some r ->
        ignore
          (Sim.Engine.schedule t.engine ~delay:from_ns (fun () ->
               if not (Sim.Rtos.crashed r) then begin
                 Sim.Rtos.set_speed_scale r factor;
                 f.fstats.Fault.Stats.pe_slowdowns <-
                   f.fstats.Fault.Stats.pe_slowdowns + 1;
                 record_fault t ~kind:"pe_slow_on" ~target:pe ~info:"-"
               end));
        ignore
          (Sim.Engine.schedule t.engine ~delay:until_ns (fun () ->
               if not (Sim.Rtos.crashed r) then begin
                 Sim.Rtos.set_speed_scale r 1.0;
                 record_fault t ~kind:"pe_slow_off" ~target:pe ~info:"-"
               end)))
    (Fault.Injector.pe_slowdowns f.injector)

let create ?trace:(trace_store = Sim.Trace.create ()) ?faults ?obs ?flows
    ?(engine = Reference) sys =
  let engine_kind = engine in
  match Ir.check sys with
  | _ :: _ as problems -> Error problems
  | [] ->
    let obs = match obs with Some s -> s | None -> Obs.Scope.null () in
    let flows = match flows with Some f -> f | None -> Obs.Flow.disabled () in
    let metrics = Obs.Scope.metrics obs in
    let backend =
      match engine_kind with
      | Reference -> `Binary_heap
      | Compiled -> `Calendar
    in
    let engine = Sim.Engine.create ~backend ~obs () in
    let network = Hibi.Network.create ~obs engine in
    List.iter
      (fun (s : Ir.segment_decl) ->
        Hibi.Network.add_segment network ~name:s.Ir.seg_name
          ~data_width_bits:s.Ir.data_width_bits
          ~frequency_mhz:s.Ir.seg_frequency_mhz
          ~arbitration:
            (match s.Ir.arbitration with
            | Ir.Priority -> Hibi.Network.Priority
            | Ir.Round_robin -> Hibi.Network.Round_robin)
          ~max_send_size:s.Ir.max_send_size ())
      sys.Ir.segments;
    List.iter
      (fun w ->
        match w with
        | Ir.Agent_wrapper { name; agent; address; segment; buffer_size; max_time; bus_priority } ->
          Hibi.Network.add_agent_wrapper network ~name ~agent ~address ~segment
            ~buffer_size ~max_time ~bus_priority ()
        | Ir.Bridge_wrapper { name; address; segments; buffer_size; max_time; bus_priority } ->
          Hibi.Network.add_bridge_wrapper network ~name ~address ~segments
            ~buffer_size ~max_time ~bus_priority ())
      sys.Ir.wrappers;
    let rtos = Hashtbl.create 8 in
    List.iter
      (fun (pe : Ir.pe_decl) ->
        Hashtbl.replace rtos pe.Ir.pe_name
          (Sim.Rtos.create ~engine ~name:pe.Ir.pe_name
             ~policy:
               (match pe.Ir.scheduling with
               | Ir.Fifo -> Sim.Rtos.Fifo
               | Ir.Priority_preemptive -> Sim.Rtos.Priority_preemptive)
             ~frequency_mhz:pe.Ir.frequency_mhz ~perf_factor:pe.Ir.perf_factor
             ~obs ()))
      sys.Ir.pes;
    let env_rtos =
      Sim.Rtos.create ~engine ~name:"environment"
        ~policy:Sim.Rtos.Fifo ~frequency_mhz:1_000_000 ~obs ()
    in
    let faults =
      match faults with
      | Some injector when Fault.Injector.active injector ->
        Some
          {
            injector;
            fstats = Fault.Injector.stats injector;
            recovery = Fault.Injector.recovery injector;
            pe_override = Hashtbl.create 8;
            undetected_crashes = [];
            next_msg_id = 0;
            remap_hook = None;
          }
      | Some _ | None -> None
    in
    (match faults with
    | Some f ->
      Hibi.Network.set_fault_hook network
        (Some
           (fun ~segment ~words ->
             ignore words;
             match
               Fault.Injector.hibi_action f.injector
                 ~now:(Sim.Engine.now engine) ~segment
             with
             | Fault.Injector.Pass -> Hibi.Network.Pass
             | Fault.Injector.Drop ->
               Sim.Trace.record trace_store
                 (Sim.Trace.Fault
                    {
                      time = Sim.Engine.now engine;
                      kind = "hibi_drop";
                      target = segment;
                      info = "-";
                    });
               Hibi.Network.Drop
             | Fault.Injector.Corrupt ->
               Sim.Trace.record trace_store
                 (Sim.Trace.Fault
                    {
                      time = Sim.Engine.now engine;
                      kind = "hibi_corrupt";
                      target = segment;
                      info = "-";
                    });
               Hibi.Network.Corrupt
             | Fault.Injector.Stall ns ->
               Sim.Trace.record trace_store
                 (Sim.Trace.Fault
                    {
                      time = Sim.Engine.now engine;
                      kind = "hibi_stall";
                      target = segment;
                      info = Int64.to_string ns;
                    });
               Hibi.Network.Stall ns))
    | None -> ());
    let procs = Hashtbl.create 32 in
    (* One compiled program per distinct machine value: instances of the
       same class share their dispatch tables and bytecode. *)
    let programs = ref [] in
    let program_of m =
      match List.find_opt (fun (m', _) -> m' == m) !programs with
      | Some (_, p) -> p
      | None ->
        let p = Efsm.Compiled.compile m in
        programs := (m, p) :: !programs;
        p
    in
    let routes_for name =
      let by_port = Hashtbl.create 8 in
      List.iter
        (fun (b : Ir.binding) ->
          if b.Ir.b_src = name then begin
            let by_signal =
              match Hashtbl.find_opt by_port b.Ir.b_port with
              | Some tbl -> tbl
              | None ->
                let tbl = Hashtbl.create 4 in
                Hashtbl.replace by_port b.Ir.b_port tbl;
                tbl
            in
            let r =
              match Hashtbl.find_opt by_signal b.Ir.b_signal with
              | Some r -> r
              | None ->
                {
                  r_dests = [];
                  r_words = Ir.signal_words sys b.Ir.b_signal;
                  r_params = Array.of_list (Ir.signal_params sys b.Ir.b_signal);
                  r_sig_id = Sim.Trace.intern trace_store b.Ir.b_signal;
                  r_targets = [||];
                }
            in
            (* append keeps bindings order, matching [Ir.destinations] *)
            Hashtbl.replace by_signal b.Ir.b_signal
              { r with r_dests = r.r_dests @ [ b.Ir.b_dst ] }
          end)
        sys.Ir.bindings;
      by_port
    in
    List.iter
      (fun (decl : Ir.proc_decl) ->
        let name = decl.Ir.proc_name in
        Hashtbl.replace procs name
          {
            decl;
            name_id = Sim.Trace.intern trace_store name;
            exec =
              (match engine_kind with
              | Reference -> Exec_interp (Efsm.Interp.create decl.Ir.machine)
              | Compiled ->
                Exec_compiled
                  (Efsm.Compiled.create (program_of decl.Ir.machine)));
            queue = Sim.Mailbox.Flat.create ~dummy:[] ();
            busy = false;
            timer = Sim.Engine.never;
            armed_state = "";
            timer_fire = ignore;
            sched = env_rtos;
            eff_rest = [];
            eff_idx = 0;
            eff_k = ignore;
            eff_cycles = 0;
            eff_cont = ignore;
            eff_cont_b = ignore;
            sig_map = [||];
            finish_fn = ignore;
            current_flow = -1;
            stats = { handled = 0; total_wait_ns = 0; max_wait_ns = 0 };
            track = "proc/" ^ name;
            routes = routes_for name;
            m_sends = Obs.Metrics.counter metrics ("app." ^ name ^ ".sends");
            m_discards = Obs.Metrics.counter metrics ("app." ^ name ^ ".discards");
          })
      sys.Ir.procs;
    (* Second pass: resolve each route's destinations to process
       instances (and interned ids) now that every process exists, so a
       send walks a flat array instead of hashing per destination. *)
    Hashtbl.iter
      (fun _ proc ->
        Hashtbl.iter
          (fun _ by_signal ->
            Hashtbl.iter
              (fun _ r ->
                r.r_targets <-
                  Array.of_list
                    (List.map
                       (fun d ->
                         {
                           tgt_name = d;
                           tgt_name_id = Sim.Trace.intern trace_store d;
                           tgt_proc = Hashtbl.find_opt procs d;
                         })
                       r.r_dests))
              by_signal)
          proc.routes)
      procs;
    let t =
      {
        sys;
        engine;
        trace = trace_store;
        network;
        rtos;
        env_rtos;
        procs;
        faults;
        errors = [];
        tracer = Obs.Scope.tracer obs;
        obs_on = Obs.Scope.live obs;
        trace_on = Obs.Tracer.enabled (Obs.Scope.tracer obs);
        flows;
        flows_on = Obs.Flow.enabled flows;
        timeout_id = Sim.Trace.intern trace_store timeout_signal;
        st_born = Sim.Trace.intern trace_store "born";
        st_queue = Sim.Trace.intern trace_store "queue";
        st_process = Sim.Trace.intern trace_store "process";
        st_transfer = Sim.Trace.intern trace_store "transfer";
        st_retransmit = Sim.Trace.intern trace_store "retransmit";
        st_end = Sim.Trace.intern trace_store "end";
        overhead_eff = Efsm.Action.Eff_compute sys.Ir.dispatch_overhead_cycles;
        overhead_cycles = sys.Ir.dispatch_overhead_cycles;
        m_exec_cycles = Obs.Metrics.counter metrics "app.exec_cycles_total";
        m_signals = Obs.Metrics.counter metrics "app.signals_sent";
        m_discard_total = Obs.Metrics.counter metrics "app.signals_discarded";
      }
    in
    (* Third pass: each process gets one timer callback for its whole
       lifetime (it needs [t], so it is wired after the record exists). *)
    Hashtbl.iter
      (fun _ proc ->
        proc.sched <- rtos_of t proc;
        proc.timer_fire <-
          (fun () ->
            proc.timer <- Sim.Engine.never;
            (* Stale timers (state changed meanwhile) are discarded; only
               deliver when still in the armed state. *)
            if exec_state proc.exec = proc.armed_state then begin
              Sim.Mailbox.Flat.push proc.queue t.timeout_id (-1)
                (Sim.Engine.now_ns t.engine)
                [];
              pump t proc
            end);
        proc.eff_cont <-
          (fun () ->
            record_exec_i t proc proc.eff_cycles;
            run_effects t proc proc.eff_rest proc.eff_k);
        (match proc.exec with
        | Exec_compiled vm ->
          proc.eff_cont_b <-
            (fun () ->
              record_exec_i t proc proc.eff_cycles;
              run_effects_c t proc vm proc.eff_idx proc.eff_k)
        | Exec_interp _ -> ());
        proc.finish_fn <-
          (fun () ->
            proc.busy <- false;
            arm_timer t proc;
            pump t proc))
      t.procs;
    Ok t

let start t =
  Hashtbl.iter
    (fun _ proc ->
      let effects =
        exec_initial_entry proc.exec @ exec_run_completions proc.exec
      in
      if effects <> [] then begin
        proc.busy <- true;
        run_effects t proc effects (fun () ->
            proc.busy <- false;
            arm_timer t proc;
            pump t proc)
      end
      else arm_timer t proc)
    t.procs;
  match t.faults with
  | Some f ->
    schedule_pe_faults t f;
    watchdog_tick t f
  | None -> ()

let run t ~until_ns = Sim.Engine.run ~until:until_ns t.engine

let inject t ~dst ~signal ~args =
  match Hashtbl.find_opt t.procs dst with
  | None -> t.errors <- Printf.sprintf "inject: unknown process %s" dst :: t.errors
  | Some proc ->
    let now = Sim.Engine.now_ns t.engine in
    let sig_id = Sim.Trace.intern t.trace signal in
    let flow =
      if not t.flows_on then -1
      else begin
        let id =
          Obs.Flow.mint t.flows ~now:(Int64.of_int now) ~origin:signal
        in
        Sim.Trace.record_flow_hop t.trace ~time:now ~flow:id ~stage:t.st_born
          ~where_:sig_id ~dur:0;
        id
      end
    in
    Sim.Mailbox.Flat.push proc.queue sig_id flow now args;
    pump t proc

let queue_latencies t =
  Hashtbl.fold
    (fun name proc acc ->
      if proc.stats.handled = 0 then acc
      else
        let mean =
          float_of_int proc.stats.total_wait_ns
          /. float_of_int proc.stats.handled
        in
        (name, (proc.stats.handled, mean, Int64.of_int proc.stats.max_wait_ns))
        :: acc)
    t.procs []
  |> List.sort compare

let queue_high_water t =
  Hashtbl.fold
    (fun name proc acc ->
      (name, Sim.Mailbox.Flat.high_water proc.queue) :: acc)
    t.procs []
  |> List.sort compare

let pe_queue_high_water t =
  Hashtbl.fold
    (fun name r acc -> (name, Sim.Rtos.queue_high_water r) :: acc)
    t.rtos
    [ ("environment", Sim.Rtos.queue_high_water t.env_rtos) ]
  |> List.sort compare

let process_state t name =
  Option.map (fun p -> exec_state p.exec) (Hashtbl.find_opt t.procs name)

let process_var t name var =
  match Hashtbl.find_opt t.procs name with
  | None -> None
  | Some p -> exec_read_var p.exec var

let pe_busy_ns t =
  Hashtbl.fold (fun name r acc -> (name, Sim.Rtos.busy_ns r) :: acc) t.rtos []
  |> List.sort compare

let pe_executed_cycles t =
  Hashtbl.fold
    (fun name r acc -> (name, Sim.Rtos.executed_cycles r) :: acc)
    t.rtos []
  |> List.sort compare

let segment_stats t =
  List.map
    (fun (s : Ir.segment_decl) ->
      (s.Ir.seg_name, Hibi.Network.stats t.network ~segment:s.Ir.seg_name))
    t.sys.Ir.segments

let fault_stats t = Option.map (fun f -> f.fstats) t.faults

let set_remap_hook t hook =
  match t.faults with None -> () | Some f -> f.remap_hook <- Some hook

let process_pe t name =
  Option.bind (Hashtbl.find_opt t.procs name) (fun p -> effective_pe t p)

let flows t = t.flows
