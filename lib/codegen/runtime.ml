type pending = {
  p_signal : string;
  p_args : (string * Efsm.Action.value) list;
  p_enqueued_at : int64;
}

type queue_stats = {
  mutable handled : int;
  mutable total_wait_ns : int64;
  mutable max_wait_ns : int64;
}

type proc_rt = {
  decl : Ir.proc_decl;
  interp : Efsm.Interp.t;
  queue : pending Queue.t;
  mutable busy : bool;
  mutable timer : Sim.Engine.handle option;
  stats : queue_stats;
  track : string;  (** tracing lane, "proc/<name>" *)
  m_sends : Obs.Metrics.counter;
  m_discards : Obs.Metrics.counter;
}

type t = {
  sys : Ir.system;
  engine : Sim.Engine.t;
  trace : Sim.Trace.t;
  network : Hibi.Network.t;
  rtos : (string, Sim.Rtos.t) Hashtbl.t;  (** PE name -> scheduler *)
  env_rtos : Sim.Rtos.t;
  procs : (string, proc_rt) Hashtbl.t;
  mutable errors : string list;
  tracer : Obs.Tracer.t;
  obs_on : bool;
  trace_on : bool;
  m_exec_cycles : Obs.Metrics.counter;
      (** cycles of application (non-environment) execution — matches the
          report's total, see {!Profiler.Report.cross_check} *)
  m_signals : Obs.Metrics.counter;
  m_discard_total : Obs.Metrics.counter;
}

(* Timer expiries are queued like signals so a busy process finishes its
   current event first; the marker never collides with model signals. *)
let timeout_signal = "__timeout__"

let engine t = t.engine
let trace t = t.trace
let system t = t.sys
let runtime_errors t = List.rev t.errors

let rtos_of t (proc : proc_rt) =
  match proc.decl.Ir.pe with
  | None -> t.env_rtos
  | Some pe -> (
    match Hashtbl.find_opt t.rtos pe with
    | Some r -> r
    | None -> t.env_rtos)

let is_env (proc : proc_rt) = proc.decl.Ir.pe = None

let record_exec t proc cycles =
  if not (is_env proc) then begin
    if t.obs_on then Obs.Metrics.inc ~by:(Int64.to_int cycles) t.m_exec_cycles;
    Sim.Trace.record t.trace
      (Sim.Trace.Exec
         {
           time = Sim.Engine.now t.engine;
           process = proc.decl.Ir.proc_name;
           cycles;
         })
  end

let same_pe _t a b =
  match a.decl.Ir.pe, b.decl.Ir.pe with
  | Some x, Some y -> x = y
  | None, _ | _, None -> true
  (* environment delivery is local: the env agent sits conceptually next
     to whatever boundary hardware it stimulates *)

let local_delivery_ns = 100L

let rec pump t proc =
  if (not proc.busy) && not (Queue.is_empty proc.queue) then begin
    let event = Queue.pop proc.queue in
    let wait = Int64.sub (Sim.Engine.now t.engine) event.p_enqueued_at in
    proc.stats.handled <- proc.stats.handled + 1;
    proc.stats.total_wait_ns <- Int64.add proc.stats.total_wait_ns wait;
    if wait > proc.stats.max_wait_ns then proc.stats.max_wait_ns <- wait;
    proc.busy <- true;
    let before_state = Efsm.Interp.state proc.interp in
    let step =
      if event.p_signal = timeout_signal then
        Efsm.Interp.fire_timer proc.interp ~entered_state:before_state
      else
        Efsm.Interp.dispatch proc.interp ~signal:event.p_signal
          ~args:event.p_args
    in
    match step.Efsm.Interp.fired with
    | None ->
      if event.p_signal <> timeout_signal && not (is_env proc) then begin
        (if t.obs_on then begin
           Obs.Metrics.inc proc.m_discards;
           Obs.Metrics.inc t.m_discard_total
         end);
        if t.trace_on then
          Obs.Tracer.instant t.tracer ~ts_ns:(Sim.Engine.now t.engine)
            ~cat:"app" ~track:proc.track
            ~args:[ ("signal", Obs.Span.Str event.p_signal) ]
            "discard";
        Sim.Trace.record t.trace
          (Sim.Trace.Discard
             {
               time = Sim.Engine.now t.engine;
               process = proc.decl.Ir.proc_name;
               signal = event.p_signal;
             })
      end;
      proc.busy <- false;
      pump t proc
    | Some _ ->
      let after_state = Efsm.Interp.state proc.interp in
      if not (is_env proc) then
        Sim.Trace.record t.trace
          (Sim.Trace.State_change
             {
               time = Sim.Engine.now t.engine;
               process = proc.decl.Ir.proc_name;
               from_ = before_state;
               to_ = after_state;
             });
      let overhead = Int64.of_int t.sys.Ir.dispatch_overhead_cycles in
      let effects =
        Efsm.Action.Eff_compute (Int64.to_int overhead) :: step.Efsm.Interp.effects
      in
      (* Only build the span-emitting continuation when tracing, so the
         common path's closure stays small. *)
      let k =
        if t.trace_on && not (is_env proc) then begin
          let handled_at = Sim.Engine.now t.engine in
          fun () ->
            Obs.Tracer.complete t.tracer ~ts_ns:handled_at
              ~dur_ns:(Int64.sub (Sim.Engine.now t.engine) handled_at)
              ~cat:"app" ~track:proc.track
              ~args:[ ("to_state", Obs.Span.Str after_state) ]
              (if event.p_signal = timeout_signal then "timeout"
               else event.p_signal);
            proc.busy <- false;
            arm_timer t proc;
            pump t proc
        end
        else
          fun () ->
            proc.busy <- false;
            arm_timer t proc;
            pump t proc
      in
      run_effects t proc effects k
  end

and run_effects t proc effects k =
  match effects with
  | [] -> k ()
  | Efsm.Action.Eff_compute cycles :: rest ->
    let cycles64 = Int64.of_int cycles in
    Sim.Rtos.submit (rtos_of t proc) ~task:proc.decl.Ir.proc_name
      ~priority:proc.decl.Ir.priority ~cycles:cycles64 (fun () ->
        record_exec t proc cycles64;
        run_effects t proc rest k)
  | Efsm.Action.Eff_send { port; signal; args } :: rest ->
    send t proc ~port ~signal ~args;
    run_effects t proc rest k

and send t proc ~port ~signal ~args =
  let dests =
    Ir.destinations t.sys ~src:proc.decl.Ir.proc_name ~port ~signal
  in
  if dests = [] then
    t.errors <-
      Printf.sprintf "no binding for %s.%s!%s" proc.decl.Ir.proc_name port signal
      :: t.errors;
  let words = Ir.signal_words t.sys signal in
  (* Positional send arguments become the named trigger parameters the
     receiving machine declared for this signal. *)
  let param_names = Ir.signal_params t.sys signal in
  let named_args =
    List.mapi
      (fun i value ->
        match List.nth_opt param_names i with
        | Some name -> (name, value)
        | None -> (Printf.sprintf "arg%d" i, value))
      args
  in
  (* The first (non-negative) integer argument is recorded as the
     correlation tag — for TUTMAC that is the MSDU/PDU sequence number,
     which lets the profiler compute end-to-end latencies. *)
  let tag =
    match args with
    | Efsm.Action.V_int n :: _ when n >= 0 -> n
    | _ -> -1
  in
  List.iter
    (fun dst_name ->
      match Hashtbl.find_opt t.procs dst_name with
      | None ->
        t.errors <- Printf.sprintf "unknown destination %s" dst_name :: t.errors
      | Some dst ->
        (if t.obs_on then begin
           Obs.Metrics.inc proc.m_sends;
           Obs.Metrics.inc t.m_signals
         end);
        Sim.Trace.record t.trace
          (Sim.Trace.Signal
             {
               time = Sim.Engine.now t.engine;
               sender = proc.decl.Ir.proc_name;
               receiver = dst_name;
               signal;
               words;
               tag;
             });
        let deliver () =
          Queue.push
            {
              p_signal = signal;
              p_args = named_args;
              p_enqueued_at = Sim.Engine.now t.engine;
            }
            dst.queue;
          pump t dst
        in
        if same_pe t proc dst then
          ignore (Sim.Engine.schedule t.engine ~delay:local_delivery_ns deliver)
        else begin
          let src_pe = Option.get proc.decl.Ir.pe in
          let dst_pe = Option.get dst.decl.Ir.pe in
          match
            Hibi.Network.send t.network ~src:src_pe ~dst:dst_pe ~words
              ~on_delivered:deliver
          with
          | Ok () -> ()
          | Error e ->
            t.errors <- Printf.sprintf "hibi: %s" e :: t.errors;
            (* Fall back to local delivery so the simulation continues. *)
            ignore (Sim.Engine.schedule t.engine ~delay:local_delivery_ns deliver)
        end)
    dests

and arm_timer t proc =
  (* One outstanding timer per process: firing a transition re-enters a
     state, which restarts its After timer (UML state-entry semantics). *)
  (match proc.timer with
  | Some handle -> Sim.Engine.cancel handle
  | None -> ());
  proc.timer <- None;
  match Efsm.Interp.timer_request proc.interp with
  | None -> ()
  | Some delay_ns ->
    let armed_state = Efsm.Interp.state proc.interp in
    let handle =
      Sim.Engine.schedule t.engine ~delay:(Int64.of_int delay_ns) (fun () ->
          proc.timer <- None;
          (* Stale timers (state changed meanwhile) are discarded; only
             deliver when still in the armed state. *)
          if Efsm.Interp.state proc.interp = armed_state then begin
            Queue.push
              {
                p_signal = timeout_signal;
                p_args = [];
                p_enqueued_at = Sim.Engine.now t.engine;
              }
              proc.queue;
            pump t proc
          end)
    in
    proc.timer <- Some handle

let create ?trace:(trace_store = Sim.Trace.create ()) ?obs sys =
  match Ir.check sys with
  | _ :: _ as problems -> Error problems
  | [] ->
    let obs = match obs with Some s -> s | None -> Obs.Scope.null () in
    let metrics = Obs.Scope.metrics obs in
    let engine = Sim.Engine.create ~obs () in
    let network = Hibi.Network.create ~obs engine in
    List.iter
      (fun (s : Ir.segment_decl) ->
        Hibi.Network.add_segment network ~name:s.Ir.seg_name
          ~data_width_bits:s.Ir.data_width_bits
          ~frequency_mhz:s.Ir.seg_frequency_mhz
          ~arbitration:
            (match s.Ir.arbitration with
            | Ir.Priority -> Hibi.Network.Priority
            | Ir.Round_robin -> Hibi.Network.Round_robin)
          ~max_send_size:s.Ir.max_send_size ())
      sys.Ir.segments;
    List.iter
      (fun w ->
        match w with
        | Ir.Agent_wrapper { name; agent; address; segment; buffer_size; max_time; bus_priority } ->
          Hibi.Network.add_agent_wrapper network ~name ~agent ~address ~segment
            ~buffer_size ~max_time ~bus_priority ()
        | Ir.Bridge_wrapper { name; address; segments; buffer_size; max_time; bus_priority } ->
          Hibi.Network.add_bridge_wrapper network ~name ~address ~segments
            ~buffer_size ~max_time ~bus_priority ())
      sys.Ir.wrappers;
    let rtos = Hashtbl.create 8 in
    List.iter
      (fun (pe : Ir.pe_decl) ->
        Hashtbl.replace rtos pe.Ir.pe_name
          (Sim.Rtos.create ~engine ~name:pe.Ir.pe_name
             ~policy:
               (match pe.Ir.scheduling with
               | Ir.Fifo -> Sim.Rtos.Fifo
               | Ir.Priority_preemptive -> Sim.Rtos.Priority_preemptive)
             ~frequency_mhz:pe.Ir.frequency_mhz ~perf_factor:pe.Ir.perf_factor
             ~obs ()))
      sys.Ir.pes;
    let env_rtos =
      Sim.Rtos.create ~engine ~name:"environment"
        ~policy:Sim.Rtos.Fifo ~frequency_mhz:1_000_000 ~obs ()
    in
    let procs = Hashtbl.create 32 in
    List.iter
      (fun (decl : Ir.proc_decl) ->
        let name = decl.Ir.proc_name in
        Hashtbl.replace procs name
          {
            decl;
            interp = Efsm.Interp.create decl.Ir.machine;
            queue = Queue.create ();
            busy = false;
            timer = None;
            stats = { handled = 0; total_wait_ns = 0L; max_wait_ns = 0L };
            track = "proc/" ^ name;
            m_sends = Obs.Metrics.counter metrics ("app." ^ name ^ ".sends");
            m_discards = Obs.Metrics.counter metrics ("app." ^ name ^ ".discards");
          })
      sys.Ir.procs;
    Ok
      {
        sys;
        engine;
        trace = trace_store;
        network;
        rtos;
        env_rtos;
        procs;
        errors = [];
        tracer = Obs.Scope.tracer obs;
        obs_on = Obs.Scope.live obs;
        trace_on = Obs.Tracer.enabled (Obs.Scope.tracer obs);
        m_exec_cycles = Obs.Metrics.counter metrics "app.exec_cycles_total";
        m_signals = Obs.Metrics.counter metrics "app.signals_sent";
        m_discard_total = Obs.Metrics.counter metrics "app.signals_discarded";
      }

let start t =
  Hashtbl.iter
    (fun _ proc ->
      let effects =
        Efsm.Interp.initial_entry proc.interp
        @ Efsm.Interp.run_completions proc.interp
      in
      if effects <> [] then begin
        proc.busy <- true;
        run_effects t proc effects (fun () ->
            proc.busy <- false;
            arm_timer t proc;
            pump t proc)
      end
      else arm_timer t proc)
    t.procs

let run t ~until_ns = Sim.Engine.run ~until:until_ns t.engine

let inject t ~dst ~signal ~args =
  match Hashtbl.find_opt t.procs dst with
  | None -> t.errors <- Printf.sprintf "inject: unknown process %s" dst :: t.errors
  | Some proc ->
    Queue.push
      { p_signal = signal; p_args = args; p_enqueued_at = Sim.Engine.now t.engine }
      proc.queue;
    pump t proc

let queue_latencies t =
  Hashtbl.fold
    (fun name proc acc ->
      if proc.stats.handled = 0 then acc
      else
        let mean =
          Int64.to_float proc.stats.total_wait_ns
          /. float_of_int proc.stats.handled
        in
        (name, (proc.stats.handled, mean, proc.stats.max_wait_ns)) :: acc)
    t.procs []
  |> List.sort compare

let process_state t name =
  Option.map (fun p -> Efsm.Interp.state p.interp) (Hashtbl.find_opt t.procs name)

let process_var t name var =
  match Hashtbl.find_opt t.procs name with
  | None -> None
  | Some p -> Efsm.Interp.read_var p.interp var

let pe_busy_ns t =
  Hashtbl.fold (fun name r acc -> (name, Sim.Rtos.busy_ns r) :: acc) t.rtos []
  |> List.sort compare

let pe_executed_cycles t =
  Hashtbl.fold
    (fun name r acc -> (name, Sim.Rtos.executed_cycles r) :: acc)
    t.rtos []
  |> List.sort compare

let segment_stats t =
  List.map
    (fun (s : Ir.segment_decl) ->
      (s.Ir.seg_name, Hibi.Network.stats t.network ~segment:s.Ir.seg_name))
    t.sys.Ir.segments
