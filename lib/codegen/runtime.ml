type pending = {
  p_signal : string;
  p_args : (string * Efsm.Action.value) list;
  p_enqueued_at : int64;
  p_flow : int;  (** causal flow id carried by the signal; -1 = none *)
}

type engine_kind = Reference | Compiled

(* One process's EFSM stepper.  Both variants implement the identical
   reactive contract ({!Efsm.Interp} documents it; {!Efsm.Compiled}
   mirrors it bit for bit), so everything downstream of the step —
   effects, traces, flows, faults — is shared and the two engines
   cannot drift apart structurally. *)
type exec =
  | Exec_interp of Efsm.Interp.t
  | Exec_compiled of Efsm.Compiled.t

let exec_state = function
  | Exec_interp i -> Efsm.Interp.state i
  | Exec_compiled c -> Efsm.Compiled.state c

let exec_dispatch exec ~signal ~args =
  match exec with
  | Exec_interp i -> Efsm.Interp.dispatch i ~signal ~args
  | Exec_compiled c -> Efsm.Compiled.dispatch c ~signal ~args

let exec_fire_timer exec ~entered_state =
  match exec with
  | Exec_interp i -> Efsm.Interp.fire_timer i ~entered_state
  | Exec_compiled c -> Efsm.Compiled.fire_timer c ~entered_state

let exec_timer_request = function
  | Exec_interp i -> Efsm.Interp.timer_request i
  | Exec_compiled c -> Efsm.Compiled.timer_request c

let exec_initial_entry = function
  | Exec_interp i -> Efsm.Interp.initial_entry i
  | Exec_compiled c -> Efsm.Compiled.initial_entry c

let exec_run_completions = function
  | Exec_interp i -> Efsm.Interp.run_completions i
  | Exec_compiled c -> Efsm.Compiled.run_completions c

let exec_read_var exec name =
  match exec with
  | Exec_interp i -> Efsm.Interp.read_var i name
  | Exec_compiled c -> Efsm.Compiled.read_var c name

type queue_stats = {
  mutable handled : int;
  mutable total_wait_ns : int64;
  mutable max_wait_ns : int64;
}

type proc_rt = {
  decl : Ir.proc_decl;
  exec : exec;
  queue : pending Sim.Mailbox.t;
  mutable busy : bool;
  mutable timer : Sim.Engine.handle option;
  mutable current_flow : int;
      (** flow of the event being handled: sends made while handling it
          inherit this id (causal propagation); -1 outside handling *)
  stats : queue_stats;
  track : string;  (** tracing lane, "proc/<name>" *)
  routes : (string * string, route) Hashtbl.t;
      (** (port, signal) -> precompiled route; the same destinations /
          payload words / parameter names {!Ir.destinations},
          {!Ir.signal_words} and {!Ir.signal_params} would compute,
          resolved once at load instead of scanned per send *)
  m_sends : Obs.Metrics.counter;
  m_discards : Obs.Metrics.counter;
}

and route = {
  r_dests : string list;  (** bindings order, like [Ir.destinations] *)
  r_words : int;
  r_params : string array;  (** receiver parameter names, positional *)
}

(* One in-flight ARQ exchange: a CRC-framed inter-PE message with a
   retransmission timer.  The "ack" is implicit and instant — when the
   receiver's CRC check passes, the sender's timer is cancelled — a
   stop-and-wait ARQ with a free reverse channel. *)
type arq_entry = {
  a_id : int;
  a_payload : string;  (** original payload, for residual detection *)
  a_frame : string;  (** payload + CRC-32 trailer as sent *)
  a_words : int;  (** payload words + one trailer word *)
  a_sender : string;
  a_receiver : string;
  a_signal : string;
  a_flow : int;  (** causal flow id of the framed message; -1 = none *)
  mutable a_attempts : int;  (** retransmissions so far *)
  mutable a_timer : Sim.Engine.handle option;
  mutable a_done : bool;  (** delivered intact at least once *)
  a_deliver : unit -> unit;
}

type fault_rt = {
  injector : Fault.Injector.t;
  fstats : Fault.Stats.t;
  recovery : Fault.Plan.recovery;
  pe_override : (string, string) Hashtbl.t;
      (** process -> PE it was re-mapped onto after a crash *)
  mutable undetected_crashes : (string * int64) list;
      (** crashed PEs the watchdog has not noticed yet, with crash time *)
  mutable next_msg_id : int;
  mutable remap_hook :
    (dead_pe:string -> survivors:string list -> (string * string) list) option;
}

type t = {
  sys : Ir.system;
  engine : Sim.Engine.t;
  trace : Sim.Trace.t;
  network : Hibi.Network.t;
  rtos : (string, Sim.Rtos.t) Hashtbl.t;  (** PE name -> scheduler *)
  env_rtos : Sim.Rtos.t;
  procs : (string, proc_rt) Hashtbl.t;
  faults : fault_rt option;
  mutable errors : string list;
  tracer : Obs.Tracer.t;
  obs_on : bool;
  trace_on : bool;
  flows : Obs.Flow.t;
  flows_on : bool;
  m_exec_cycles : Obs.Metrics.counter;
      (** cycles of application (non-environment) execution — matches the
          report's total, see {!Profiler.Report.cross_check} *)
  m_signals : Obs.Metrics.counter;
  m_discard_total : Obs.Metrics.counter;
}

(* Timer expiries are queued like signals so a busy process finishes its
   current event first; the marker never collides with model signals. *)
let timeout_signal = "__timeout__"

let engine t = t.engine
let trace t = t.trace
let system t = t.sys
let runtime_errors t = List.rev t.errors

(* The PE a process currently runs on: its mapped PE unless degradation
   re-mapping moved it after a crash. *)
let effective_pe t (proc : proc_rt) =
  match proc.decl.Ir.pe with
  | None -> None
  | Some pe -> (
    match t.faults with
    | None -> Some pe
    | Some f -> (
      match Hashtbl.find_opt f.pe_override proc.decl.Ir.proc_name with
      | Some moved -> Some moved
      | None -> Some pe))

let rtos_of t (proc : proc_rt) =
  match effective_pe t proc with
  | None -> t.env_rtos
  | Some pe -> (
    match Hashtbl.find_opt t.rtos pe with
    | Some r -> r
    | None -> t.env_rtos)

let is_env (proc : proc_rt) = proc.decl.Ir.pe = None

let record_fault t ~kind ~target ~info =
  Sim.Trace.record t.trace
    (Sim.Trace.Fault
       { time = Sim.Engine.now t.engine; kind; target; info })

let record_exec t proc cycles =
  if not (is_env proc) then begin
    if t.obs_on then Obs.Metrics.inc ~by:(Int64.to_int cycles) t.m_exec_cycles;
    Sim.Trace.record t.trace
      (Sim.Trace.Exec
         {
           time = Sim.Engine.now t.engine;
           process = proc.decl.Ir.proc_name;
           cycles;
         })
  end

let same_pe t a b =
  match effective_pe t a, effective_pe t b with
  | Some x, Some y -> x = y
  | None, _ | _, None -> true
  (* environment delivery is local: the env agent sits conceptually next
     to whatever boundary hardware it stimulates *)

let local_delivery_ns = 100L

let rec pump t proc =
  if (not proc.busy) && not (Sim.Mailbox.is_empty proc.queue) then begin
    let event = Sim.Mailbox.pop proc.queue in
    let wait = Int64.sub (Sim.Engine.now t.engine) event.p_enqueued_at in
    proc.stats.handled <- proc.stats.handled + 1;
    proc.stats.total_wait_ns <- Int64.add proc.stats.total_wait_ns wait;
    if wait > proc.stats.max_wait_ns then proc.stats.max_wait_ns <- wait;
    proc.current_flow <- event.p_flow;
    if t.flows_on && event.p_flow >= 0 then begin
      Obs.Flow.hop t.flows ~flow:event.p_flow ~stage:Obs.Flow.Queue_wait
        ~dur_ns:wait;
      Sim.Trace.record t.trace
        (Sim.Trace.Flow_hop
           {
             time = Sim.Engine.now t.engine;
             flow = event.p_flow;
             stage = "queue";
             where_ = proc.decl.Ir.proc_name;
             dur = wait;
           })
    end;
    proc.busy <- true;
    let before_state = exec_state proc.exec in
    let step =
      if event.p_signal = timeout_signal then
        exec_fire_timer proc.exec ~entered_state:before_state
      else
        exec_dispatch proc.exec ~signal:event.p_signal ~args:event.p_args
    in
    match step.Efsm.Interp.fired with
    | None ->
      if event.p_signal <> timeout_signal && not (is_env proc) then begin
        (if t.obs_on then begin
           Obs.Metrics.inc proc.m_discards;
           Obs.Metrics.inc t.m_discard_total
         end);
        if t.trace_on then
          Obs.Tracer.instant t.tracer ~ts_ns:(Sim.Engine.now t.engine)
            ~cat:"app" ~track:proc.track
            ~args:[ ("signal", Obs.Span.Str event.p_signal) ]
            "discard";
        Sim.Trace.record t.trace
          (Sim.Trace.Discard
             {
               time = Sim.Engine.now t.engine;
               process = proc.decl.Ir.proc_name;
               signal = event.p_signal;
             })
      end;
      proc.busy <- false;
      pump t proc
    | Some _ ->
      let after_state = exec_state proc.exec in
      if not (is_env proc) then
        Sim.Trace.record t.trace
          (Sim.Trace.State_change
             {
               time = Sim.Engine.now t.engine;
               process = proc.decl.Ir.proc_name;
               from_ = before_state;
               to_ = after_state;
             });
      let overhead = Int64.of_int t.sys.Ir.dispatch_overhead_cycles in
      let effects =
        Efsm.Action.Eff_compute (Int64.to_int overhead) :: step.Efsm.Interp.effects
      in
      (* Only build the span/flow-emitting continuation when observing,
         so the common path's closure stays small. *)
      let flow = event.p_flow in
      let finish () =
        proc.busy <- false;
        arm_timer t proc;
        pump t proc
      in
      let k =
        if (t.trace_on || (t.flows_on && flow >= 0)) && not (is_env proc)
        then begin
          let handled_at = Sim.Engine.now t.engine in
          fun () ->
            let now = Sim.Engine.now t.engine in
            let dur = Int64.sub now handled_at in
            if t.trace_on then
              Obs.Tracer.complete t.tracer ~ts_ns:handled_at ~dur_ns:dur
                ~cat:"app" ~track:proc.track
                ~args:[ ("to_state", Obs.Span.Str after_state) ]
                (if event.p_signal = timeout_signal then "timeout"
                 else event.p_signal);
            if t.flows_on && flow >= 0 then begin
              Obs.Flow.hop t.flows ~flow ~stage:Obs.Flow.Process ~dur_ns:dur;
              Sim.Trace.record t.trace
                (Sim.Trace.Flow_hop
                   {
                     time = now;
                     flow;
                     stage = "process";
                     where_ = proc.decl.Ir.proc_name;
                     dur;
                   })
            end;
            finish ()
        end
        else finish
      in
      run_effects t proc effects k
  end

and run_effects t proc effects k =
  match effects with
  | [] -> k ()
  | Efsm.Action.Eff_compute cycles :: rest ->
    let cycles64 = Int64.of_int cycles in
    Sim.Rtos.submit (rtos_of t proc) ~task:proc.decl.Ir.proc_name
      ~priority:proc.decl.Ir.priority ~flow:proc.current_flow
      ~cycles:cycles64 (fun () ->
        record_exec t proc cycles64;
        run_effects t proc rest k)
  | Efsm.Action.Eff_send { port; signal; args } :: rest ->
    send t proc ~port ~signal ~args;
    run_effects t proc rest k

and send t proc ~port ~signal ~args =
  let route =
    match Hashtbl.find_opt proc.routes (port, signal) with
    | Some r -> r
    | None ->
      {
        r_dests = [];
        r_words = Ir.signal_words t.sys signal;
        r_params = Array.of_list (Ir.signal_params t.sys signal);
      }
  in
  let dests = route.r_dests in
  if dests = [] then
    t.errors <-
      Printf.sprintf "no binding for %s.%s!%s" proc.decl.Ir.proc_name port signal
      :: t.errors;
  let words = route.r_words in
  (* Positional send arguments become the named trigger parameters the
     receiving machine declared for this signal. *)
  let named_args =
    List.mapi
      (fun i value ->
        if i < Array.length route.r_params then (route.r_params.(i), value)
        else (Printf.sprintf "arg%d" i, value))
      args
  in
  (* The first (non-negative) integer argument is recorded as the
     correlation tag — for TUTMAC that is the MSDU/PDU sequence number,
     which lets the profiler compute end-to-end latencies. *)
  let tag =
    match args with
    | Efsm.Action.V_int n :: _ when n >= 0 -> n
    | _ -> -1
  in
  (* Causal propagation: a send made while handling a flow-carrying
     event rides that flow; a send with no inherited context (an
     environment stimulus, a timer-driven transmission opportunity)
     births a new flow — its traffic class is this signal. *)
  let msg_flow =
    if not t.flows_on then -1
    else if proc.current_flow >= 0 then proc.current_flow
    else begin
      let now = Sim.Engine.now t.engine in
      let id = Obs.Flow.mint t.flows ~now ~origin:signal in
      Sim.Trace.record t.trace
        (Sim.Trace.Flow_hop
           { time = now; flow = id; stage = "born"; where_ = signal; dur = 0L });
      id
    end
  in
  List.iter
    (fun dst_name ->
      match Hashtbl.find_opt t.procs dst_name with
      | None ->
        t.errors <- Printf.sprintf "unknown destination %s" dst_name :: t.errors
      | Some dst ->
        (if t.obs_on then begin
           Obs.Metrics.inc proc.m_sends;
           Obs.Metrics.inc t.m_signals
         end);
        Sim.Trace.record t.trace
          (Sim.Trace.Signal
             {
               time = Sim.Engine.now t.engine;
               sender = proc.decl.Ir.proc_name;
               receiver = dst_name;
               signal;
               words;
               tag;
             });
        let base_deliver () =
          Sim.Mailbox.push dst.queue
            {
              p_signal = signal;
              p_args = named_args;
              p_enqueued_at = Sim.Engine.now t.engine;
              p_flow = msg_flow;
            };
          pump t dst
        in
        let deliver =
          if msg_flow < 0 then base_deliver
          else begin
            (* Flow accounting happens at actual delivery time: the
               transfer stage is the bus latency (incl. ARQ rounds), and
               a delivery into an environment process completes the
               flow's end-to-end path for this terminal signal. *)
            let sent_at = Sim.Engine.now t.engine in
            let remote = not (same_pe t proc dst) in
            fun () ->
              let now = Sim.Engine.now t.engine in
              (if remote then begin
                 let dur = Int64.sub now sent_at in
                 Obs.Flow.hop t.flows ~flow:msg_flow ~stage:Obs.Flow.Transfer
                   ~dur_ns:dur;
                 Sim.Trace.record t.trace
                   (Sim.Trace.Flow_hop
                      {
                        time = now;
                        flow = msg_flow;
                        stage = "transfer";
                        where_ = dst_name;
                        dur;
                      })
               end);
              (if is_env dst then
                 match
                   Obs.Flow.complete t.flows ~flow:msg_flow ~now
                     ~terminal:signal
                 with
                 | None -> ()
                 | Some e2e ->
                   Sim.Trace.record t.trace
                     (Sim.Trace.Flow_hop
                        {
                          time = now;
                          flow = msg_flow;
                          stage = "end";
                          where_ = signal;
                          dur = e2e;
                        }));
              base_deliver ()
          end
        in
        if same_pe t proc dst then local_deliver t ~dst_name ~signal deliver
        else begin
          match t.faults with
          | Some f when Fault.Injector.active f.injector ->
            arq_send t f ~src_proc:proc ~dst_proc:dst ~signal ~words
              ~flow:msg_flow deliver
          | Some _ | None -> (
            let src_pe = Option.get (effective_pe t proc) in
            let dst_pe = Option.get (effective_pe t dst) in
            match
              Hibi.Network.send ~flow:msg_flow t.network ~src:src_pe
                ~dst:dst_pe ~words ~on_delivered:deliver
            with
            | Ok () -> ()
            | Error e ->
              t.errors <- Printf.sprintf "hibi: %s" e :: t.errors;
              (* Fall back to local delivery so the simulation continues. *)
              ignore
                (Sim.Engine.schedule t.engine ~delay:local_delivery_ns deliver))
        end)
    dests

(* Local (same-PE) deliveries bypass the bus, so HIBI faults don't touch
   them; the signal loss/duplication injectors model software faults
   (queue overruns, double interrupts) on exactly this path. *)
and local_deliver t ~dst_name ~signal deliver =
  let schedule () =
    ignore (Sim.Engine.schedule t.engine ~delay:local_delivery_ns deliver)
  in
  match t.faults with
  | Some f when Fault.Injector.active f.injector -> (
    match
      Fault.Injector.signal_fate f.injector ~now:(Sim.Engine.now t.engine)
        ~process:dst_name
    with
    | Fault.Injector.Deliver -> schedule ()
    | Fault.Injector.Lose ->
      record_fault t ~kind:"signal_loss" ~target:dst_name ~info:signal
    | Fault.Injector.Duplicate ->
      record_fault t ~kind:"signal_dup" ~target:dst_name ~info:signal;
      schedule ();
      schedule ())
  | Some _ | None -> schedule ()

(* Inter-PE messages under fault injection go through stop-and-wait ARQ:
   the payload is CRC-32 framed, the receiver only accepts frames whose
   trailer checks out, and the sender retransmits on timeout with
   exponential backoff until [max_retries] is exhausted. *)
and arq_send t f ~src_proc ~dst_proc ~signal ~words ~flow deliver =
  let id = f.next_msg_id in
  f.next_msg_id <- id + 1;
  (* Deterministic stand-in payload: the model layer carries symbolic
     arguments, but the integrity machinery needs real bytes to frame,
     flip and checksum. *)
  let payload =
    String.init (words * 4) (fun i ->
        Char.chr ((((id + 1) * 131) + (i * 29)) land 0xff))
  in
  let entry =
    {
      a_id = id;
      a_payload = payload;
      a_frame = Crc.Crc32.frame payload;
      a_words = words + 1;
      a_sender = src_proc.decl.Ir.proc_name;
      a_receiver = dst_proc.decl.Ir.proc_name;
      a_signal = signal;
      a_flow = flow;
      a_attempts = 0;
      a_timer = None;
      a_done = false;
      a_deliver = deliver;
    }
  in
  arq_attempt t f ~src_proc ~dst_proc entry

and arq_attempt t f ~src_proc ~dst_proc entry =
  let attempt = entry.a_attempts in
  (* PEs are looked up per attempt: a retransmission after degradation
     re-mapping chases the receiver to its new home. *)
  let src_pe = Option.get (effective_pe t src_proc) in
  let dst_pe = Option.get (effective_pe t dst_proc) in
  let on_outcome outcome = arq_receive t f entry ~attempt ~dst_pe outcome in
  (match
     Hibi.Network.transfer ~flow:entry.a_flow t.network ~src:src_pe
       ~dst:dst_pe ~words:entry.a_words ~on_outcome
   with
  | Ok () -> ()
  | Error e ->
    t.errors <- Printf.sprintf "hibi: %s" e :: t.errors;
    ignore
      (Sim.Engine.schedule t.engine ~delay:local_delivery_ns (fun () ->
           on_outcome Hibi.Network.Delivered)));
  let backoff =
    Int64.shift_left f.recovery.Fault.Plan.ack_timeout_ns (min attempt 20)
  in
  entry.a_timer <-
    Some
      (Sim.Engine.schedule t.engine ~delay:backoff (fun () ->
           arq_timeout t f ~src_proc ~dst_proc entry))

and arq_timeout t f ~src_proc ~dst_proc entry =
  entry.a_timer <- None;
  if not entry.a_done then
    if entry.a_attempts >= f.recovery.Fault.Plan.max_retries then begin
      f.fstats.Fault.Stats.arq_giveups <- f.fstats.Fault.Stats.arq_giveups + 1;
      record_fault t ~kind:"arq_giveup" ~target:entry.a_receiver
        ~info:entry.a_signal
    end
    else begin
      entry.a_attempts <- entry.a_attempts + 1;
      f.fstats.Fault.Stats.retransmits <- f.fstats.Fault.Stats.retransmits + 1;
      Sim.Trace.record t.trace
        (Sim.Trace.Retransmit
           {
             time = Sim.Engine.now t.engine;
             sender = entry.a_sender;
             receiver = entry.a_receiver;
             signal = entry.a_signal;
             attempt = entry.a_attempts;
           });
      if t.flows_on && entry.a_flow >= 0 then begin
        (* The delay this retry adds is (at least) the timeout window
           that just expired — the backoff armed for the previous
           attempt. *)
        let expired =
          Int64.shift_left f.recovery.Fault.Plan.ack_timeout_ns
            (min (entry.a_attempts - 1) 20)
        in
        Obs.Flow.hop t.flows ~flow:entry.a_flow ~stage:Obs.Flow.Retransmit
          ~dur_ns:expired;
        Sim.Trace.record t.trace
          (Sim.Trace.Flow_hop
             {
               time = Sim.Engine.now t.engine;
               flow = entry.a_flow;
               stage = "retransmit";
               where_ = entry.a_receiver;
               dur = expired;
             })
      end;
      arq_attempt t f ~src_proc ~dst_proc entry
    end

and arq_receive t f entry ~attempt ~dst_pe outcome =
  let dst_dead =
    match Hashtbl.find_opt t.rtos dst_pe with
    | Some r -> Sim.Rtos.crashed r
    | None -> false
  in
  (* A crashed PE cannot receive: the frame dies at the wrapper and the
     sender's timeout machinery takes over. *)
  if not dst_dead then begin
    let frame' =
      match outcome with
      | Hibi.Network.Delivered -> entry.a_frame
      | Hibi.Network.Corrupted_delivery ->
        Fault.Injector.corrupt_frame f.injector
          ~salt:((entry.a_id lsl 6) lor (attempt land 63))
          entry.a_frame
    in
    (* The integrity check runs on the receiving PE's clock, at the CRC
       accelerator's cycle cost. *)
    let delay =
      match Hashtbl.find_opt t.rtos dst_pe with
      | Some r ->
        Sim.Rtos.cycles_to_ns r
          (Crc.Crc32.accelerator_cycles ~bytes_len:(String.length frame'))
      | None -> 20L
    in
    ignore
      (Sim.Engine.schedule t.engine ~delay (fun () -> arq_check t f entry frame'))
  end

and arq_check t f entry frame' =
  match Crc.Crc32.deframe frame' with
  | None ->
    f.fstats.Fault.Stats.crc_rejects <- f.fstats.Fault.Stats.crc_rejects + 1;
    record_fault t ~kind:"crc_reject" ~target:entry.a_receiver
      ~info:entry.a_signal
  | Some payload ->
    if entry.a_done then
      (* A stalled or retransmitted copy of an already-accepted message:
         suppressed by the sequence check. *)
      f.fstats.Fault.Stats.arq_duplicates <-
        f.fstats.Fault.Stats.arq_duplicates + 1
    else begin
      entry.a_done <- true;
      (match entry.a_timer with
      | Some h -> Sim.Engine.cancel h
      | None -> ());
      entry.a_timer <- None;
      if payload <> entry.a_payload then begin
        (* The CRC matched a corrupted frame: residual undetected error,
           delivered wrong — the metric the profiler must not hide. *)
        f.fstats.Fault.Stats.crc_residual <-
          f.fstats.Fault.Stats.crc_residual + 1;
        record_fault t ~kind:"crc_residual" ~target:entry.a_receiver
          ~info:entry.a_signal
      end
      else if entry.a_attempts > 0 then
        f.fstats.Fault.Stats.arq_acked <- f.fstats.Fault.Stats.arq_acked + 1;
      entry.a_deliver ()
    end

and arm_timer t proc =
  (* One outstanding timer per process: firing a transition re-enters a
     state, which restarts its After timer (UML state-entry semantics). *)
  (match proc.timer with
  | Some handle -> Sim.Engine.cancel handle
  | None -> ());
  proc.timer <- None;
  match exec_timer_request proc.exec with
  | None -> ()
  | Some delay_ns ->
    let armed_state = exec_state proc.exec in
    let handle =
      Sim.Engine.schedule t.engine ~delay:(Int64.of_int delay_ns) (fun () ->
          proc.timer <- None;
          (* Stale timers (state changed meanwhile) are discarded; only
             deliver when still in the armed state. *)
          if exec_state proc.exec = armed_state then begin
            Sim.Mailbox.push proc.queue
              {
                p_signal = timeout_signal;
                p_args = [];
                p_enqueued_at = Sim.Engine.now t.engine;
                p_flow = -1;
              };
            pump t proc
          end)
    in
    proc.timer <- Some handle

(* Graceful degradation: move every process of the dead PE onto the
   surviving PEs.  The placement comes from the installed hook (the
   scenario layer wires a DSE-backed one) with a deterministic
   round-robin fallback; processes wedged on a job the dead PE discarded
   are unblocked so they resume from their queues. *)
let do_remap t f ~dead_pe =
  let survivors =
    Hashtbl.fold
      (fun name r acc -> if Sim.Rtos.crashed r then acc else name :: acc)
      t.rtos []
    |> List.sort compare
  in
  if survivors <> [] then begin
    let moved =
      Hashtbl.fold
        (fun name proc acc ->
          if (not (is_env proc)) && effective_pe t proc = Some dead_pe then
            (name, proc) :: acc
          else acc)
        t.procs []
      |> List.sort compare
    in
    let placed =
      match f.remap_hook with
      | Some hook ->
        let chosen = hook ~dead_pe ~survivors in
        List.map
          (fun (name, proc) ->
            let pe =
              match List.assoc_opt name chosen with
              | Some pe when List.mem pe survivors -> pe
              | Some _ | None -> List.hd survivors
            in
            (name, proc, pe))
          moved
      | None ->
        List.mapi
          (fun i (name, proc) ->
            (name, proc, List.nth survivors (i mod List.length survivors)))
          moved
    in
    List.iter
      (fun (name, proc, pe) ->
        Hashtbl.replace f.pe_override name pe;
        f.fstats.Fault.Stats.remapped_processes <-
          f.fstats.Fault.Stats.remapped_processes + 1;
        record_fault t ~kind:"remap" ~target:name ~info:pe;
        proc.busy <- false;
        pump t proc)
      placed
  end

let rec watchdog_tick t f =
  let period = f.recovery.Fault.Plan.watchdog_period_ns in
  if period > 0L then
    ignore
      (Sim.Engine.schedule t.engine ~delay:period (fun () ->
           let now = Sim.Engine.now t.engine in
           let pending = List.sort compare f.undetected_crashes in
           f.undetected_crashes <- [];
           List.iter
             (fun (pe, crashed_at) ->
               f.fstats.Fault.Stats.watchdog_detections <-
                 f.fstats.Fault.Stats.watchdog_detections + 1;
               f.fstats.Fault.Stats.recovery_latencies_ns <-
                 Int64.sub now crashed_at
                 :: f.fstats.Fault.Stats.recovery_latencies_ns;
               record_fault t ~kind:"watchdog_detect" ~target:pe ~info:"-";
               if f.recovery.Fault.Plan.remap then do_remap t f ~dead_pe:pe)
             pending;
           watchdog_tick t f))

(* Arm the plan's PE faults on the event queue (simulated time 0 is
   "now" at [start]). *)
let schedule_pe_faults t f =
  List.iter
    (fun (pe, at_ns) ->
      match Hashtbl.find_opt t.rtos pe with
      | None -> ()
      | Some r ->
        ignore
          (Sim.Engine.schedule t.engine ~delay:at_ns (fun () ->
               if not (Sim.Rtos.crashed r) then begin
                 Sim.Rtos.crash r;
                 f.fstats.Fault.Stats.pe_crashes <-
                   f.fstats.Fault.Stats.pe_crashes + 1;
                 f.undetected_crashes <-
                   (pe, Sim.Engine.now t.engine) :: f.undetected_crashes;
                 record_fault t ~kind:"pe_crash" ~target:pe ~info:"-"
               end)))
    (Fault.Injector.pe_crashes f.injector);
  List.iter
    (fun (pe, factor, from_ns, until_ns) ->
      match Hashtbl.find_opt t.rtos pe with
      | None -> ()
      | Some r ->
        ignore
          (Sim.Engine.schedule t.engine ~delay:from_ns (fun () ->
               if not (Sim.Rtos.crashed r) then begin
                 Sim.Rtos.set_speed_scale r factor;
                 f.fstats.Fault.Stats.pe_slowdowns <-
                   f.fstats.Fault.Stats.pe_slowdowns + 1;
                 record_fault t ~kind:"pe_slow_on" ~target:pe ~info:"-"
               end));
        ignore
          (Sim.Engine.schedule t.engine ~delay:until_ns (fun () ->
               if not (Sim.Rtos.crashed r) then begin
                 Sim.Rtos.set_speed_scale r 1.0;
                 record_fault t ~kind:"pe_slow_off" ~target:pe ~info:"-"
               end)))
    (Fault.Injector.pe_slowdowns f.injector)

let create ?trace:(trace_store = Sim.Trace.create ()) ?faults ?obs ?flows
    ?(engine = Reference) sys =
  let engine_kind = engine in
  match Ir.check sys with
  | _ :: _ as problems -> Error problems
  | [] ->
    let obs = match obs with Some s -> s | None -> Obs.Scope.null () in
    let flows = match flows with Some f -> f | None -> Obs.Flow.disabled () in
    let metrics = Obs.Scope.metrics obs in
    let backend =
      match engine_kind with
      | Reference -> `Binary_heap
      | Compiled -> `Calendar
    in
    let engine = Sim.Engine.create ~backend ~obs () in
    let network = Hibi.Network.create ~obs engine in
    List.iter
      (fun (s : Ir.segment_decl) ->
        Hibi.Network.add_segment network ~name:s.Ir.seg_name
          ~data_width_bits:s.Ir.data_width_bits
          ~frequency_mhz:s.Ir.seg_frequency_mhz
          ~arbitration:
            (match s.Ir.arbitration with
            | Ir.Priority -> Hibi.Network.Priority
            | Ir.Round_robin -> Hibi.Network.Round_robin)
          ~max_send_size:s.Ir.max_send_size ())
      sys.Ir.segments;
    List.iter
      (fun w ->
        match w with
        | Ir.Agent_wrapper { name; agent; address; segment; buffer_size; max_time; bus_priority } ->
          Hibi.Network.add_agent_wrapper network ~name ~agent ~address ~segment
            ~buffer_size ~max_time ~bus_priority ()
        | Ir.Bridge_wrapper { name; address; segments; buffer_size; max_time; bus_priority } ->
          Hibi.Network.add_bridge_wrapper network ~name ~address ~segments
            ~buffer_size ~max_time ~bus_priority ())
      sys.Ir.wrappers;
    let rtos = Hashtbl.create 8 in
    List.iter
      (fun (pe : Ir.pe_decl) ->
        Hashtbl.replace rtos pe.Ir.pe_name
          (Sim.Rtos.create ~engine ~name:pe.Ir.pe_name
             ~policy:
               (match pe.Ir.scheduling with
               | Ir.Fifo -> Sim.Rtos.Fifo
               | Ir.Priority_preemptive -> Sim.Rtos.Priority_preemptive)
             ~frequency_mhz:pe.Ir.frequency_mhz ~perf_factor:pe.Ir.perf_factor
             ~obs ()))
      sys.Ir.pes;
    let env_rtos =
      Sim.Rtos.create ~engine ~name:"environment"
        ~policy:Sim.Rtos.Fifo ~frequency_mhz:1_000_000 ~obs ()
    in
    let faults =
      match faults with
      | Some injector when Fault.Injector.active injector ->
        Some
          {
            injector;
            fstats = Fault.Injector.stats injector;
            recovery = Fault.Injector.recovery injector;
            pe_override = Hashtbl.create 8;
            undetected_crashes = [];
            next_msg_id = 0;
            remap_hook = None;
          }
      | Some _ | None -> None
    in
    (match faults with
    | Some f ->
      Hibi.Network.set_fault_hook network
        (Some
           (fun ~segment ~words ->
             ignore words;
             match
               Fault.Injector.hibi_action f.injector
                 ~now:(Sim.Engine.now engine) ~segment
             with
             | Fault.Injector.Pass -> Hibi.Network.Pass
             | Fault.Injector.Drop ->
               Sim.Trace.record trace_store
                 (Sim.Trace.Fault
                    {
                      time = Sim.Engine.now engine;
                      kind = "hibi_drop";
                      target = segment;
                      info = "-";
                    });
               Hibi.Network.Drop
             | Fault.Injector.Corrupt ->
               Sim.Trace.record trace_store
                 (Sim.Trace.Fault
                    {
                      time = Sim.Engine.now engine;
                      kind = "hibi_corrupt";
                      target = segment;
                      info = "-";
                    });
               Hibi.Network.Corrupt
             | Fault.Injector.Stall ns ->
               Sim.Trace.record trace_store
                 (Sim.Trace.Fault
                    {
                      time = Sim.Engine.now engine;
                      kind = "hibi_stall";
                      target = segment;
                      info = Int64.to_string ns;
                    });
               Hibi.Network.Stall ns))
    | None -> ());
    let procs = Hashtbl.create 32 in
    (* One compiled program per distinct machine value: instances of the
       same class share their dispatch tables and bytecode. *)
    let programs = ref [] in
    let program_of m =
      match List.find_opt (fun (m', _) -> m' == m) !programs with
      | Some (_, p) -> p
      | None ->
        let p = Efsm.Compiled.compile m in
        programs := (m, p) :: !programs;
        p
    in
    let dummy_pending =
      { p_signal = ""; p_args = []; p_enqueued_at = 0L; p_flow = -1 }
    in
    let routes_for name =
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun (b : Ir.binding) ->
          if b.Ir.b_src = name then begin
            let key = (b.Ir.b_port, b.Ir.b_signal) in
            let r =
              match Hashtbl.find_opt tbl key with
              | Some r -> r
              | None ->
                {
                  r_dests = [];
                  r_words = Ir.signal_words sys b.Ir.b_signal;
                  r_params = Array.of_list (Ir.signal_params sys b.Ir.b_signal);
                }
            in
            (* append keeps bindings order, matching [Ir.destinations] *)
            Hashtbl.replace tbl key { r with r_dests = r.r_dests @ [ b.Ir.b_dst ] }
          end)
        sys.Ir.bindings;
      tbl
    in
    List.iter
      (fun (decl : Ir.proc_decl) ->
        let name = decl.Ir.proc_name in
        Hashtbl.replace procs name
          {
            decl;
            exec =
              (match engine_kind with
              | Reference -> Exec_interp (Efsm.Interp.create decl.Ir.machine)
              | Compiled ->
                Exec_compiled
                  (Efsm.Compiled.create (program_of decl.Ir.machine)));
            queue = Sim.Mailbox.create ~dummy:dummy_pending ();
            busy = false;
            timer = None;
            current_flow = -1;
            stats = { handled = 0; total_wait_ns = 0L; max_wait_ns = 0L };
            track = "proc/" ^ name;
            routes = routes_for name;
            m_sends = Obs.Metrics.counter metrics ("app." ^ name ^ ".sends");
            m_discards = Obs.Metrics.counter metrics ("app." ^ name ^ ".discards");
          })
      sys.Ir.procs;
    Ok
      {
        sys;
        engine;
        trace = trace_store;
        network;
        rtos;
        env_rtos;
        procs;
        faults;
        errors = [];
        tracer = Obs.Scope.tracer obs;
        obs_on = Obs.Scope.live obs;
        trace_on = Obs.Tracer.enabled (Obs.Scope.tracer obs);
        flows;
        flows_on = Obs.Flow.enabled flows;
        m_exec_cycles = Obs.Metrics.counter metrics "app.exec_cycles_total";
        m_signals = Obs.Metrics.counter metrics "app.signals_sent";
        m_discard_total = Obs.Metrics.counter metrics "app.signals_discarded";
      }

let start t =
  Hashtbl.iter
    (fun _ proc ->
      let effects =
        exec_initial_entry proc.exec @ exec_run_completions proc.exec
      in
      if effects <> [] then begin
        proc.busy <- true;
        run_effects t proc effects (fun () ->
            proc.busy <- false;
            arm_timer t proc;
            pump t proc)
      end
      else arm_timer t proc)
    t.procs;
  match t.faults with
  | Some f ->
    schedule_pe_faults t f;
    watchdog_tick t f
  | None -> ()

let run t ~until_ns = Sim.Engine.run ~until:until_ns t.engine

let inject t ~dst ~signal ~args =
  match Hashtbl.find_opt t.procs dst with
  | None -> t.errors <- Printf.sprintf "inject: unknown process %s" dst :: t.errors
  | Some proc ->
    let now = Sim.Engine.now t.engine in
    let flow =
      if not t.flows_on then -1
      else begin
        let id = Obs.Flow.mint t.flows ~now ~origin:signal in
        Sim.Trace.record t.trace
          (Sim.Trace.Flow_hop
             { time = now; flow = id; stage = "born"; where_ = signal; dur = 0L });
        id
      end
    in
    Sim.Mailbox.push proc.queue
      { p_signal = signal; p_args = args; p_enqueued_at = now; p_flow = flow };
    pump t proc

let queue_latencies t =
  Hashtbl.fold
    (fun name proc acc ->
      if proc.stats.handled = 0 then acc
      else
        let mean =
          Int64.to_float proc.stats.total_wait_ns
          /. float_of_int proc.stats.handled
        in
        (name, (proc.stats.handled, mean, proc.stats.max_wait_ns)) :: acc)
    t.procs []
  |> List.sort compare

let process_state t name =
  Option.map (fun p -> exec_state p.exec) (Hashtbl.find_opt t.procs name)

let process_var t name var =
  match Hashtbl.find_opt t.procs name with
  | None -> None
  | Some p -> exec_read_var p.exec var

let pe_busy_ns t =
  Hashtbl.fold (fun name r acc -> (name, Sim.Rtos.busy_ns r) :: acc) t.rtos []
  |> List.sort compare

let pe_executed_cycles t =
  Hashtbl.fold
    (fun name r acc -> (name, Sim.Rtos.executed_cycles r) :: acc)
    t.rtos []
  |> List.sort compare

let segment_stats t =
  List.map
    (fun (s : Ir.segment_decl) ->
      (s.Ir.seg_name, Hibi.Network.stats t.network ~segment:s.Ir.seg_name))
    t.sys.Ir.segments

let fault_stats t = Option.map (fun f -> f.fstats) t.faults

let set_remap_hook t hook =
  match t.faults with None -> () | Some f -> f.remap_hook <- Some hook

let process_pe t name =
  Option.bind (Hashtbl.find_opt t.procs name) (fun p -> effective_pe t p)

let flows t = t.flows
