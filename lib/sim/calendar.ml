(* Bucketed calendar queue (R. Brown, CACM 1988, adapted).

   Events hash into [n_buckets] buckets by [time / width mod n_buckets];
   each bucket is a singly-linked list kept sorted by [(time, seq)], so
   within one bucket the head is the bucket's minimum and two events at
   the same timestamp dequeue in scheduling order (seq is monotone).
   [pop] scans one lap of buckets starting at the bucket of the last
   popped time, accepting only heads that fall inside the bucket's
   window for this lap; a sparse queue falls back to a direct
   minimum-over-heads search.  Together this preserves the exact
   [(time, seq)] total order of the binary-heap backend — the
   differential and QCheck suites in test_sim_compiled.ml check both
   the FIFO-within-timestamp and the cross-bucket ordering laws.

   Cancelled entries are skipped lazily like the heap backend: [live]
   classifies entries, dead ones are dropped when they surface at a
   bucket head.  The structure resizes (and re-derives the bucket width
   from the live events' average spacing) when occupancy strays far
   from the bucket count.

   Times are native ints (the simulation's 63-bit ns clock), and the
   current-minimum memo lives in mutable int fields, so neither adds
   nor pops box an [int64] or allocate an option/tuple per call. *)

type 'a cell =
  | Nil
  | Cons of { time : int; seq : int; v : 'a; mutable next : 'a cell }

type 'a t = {
  live : 'a -> bool;
  mutable buckets : 'a cell array;
  mutable mask : int;  (** [n_buckets - 1]; bucket count is a power of two *)
  mutable width : int;  (** nanoseconds per bucket *)
  mutable size : int;  (** stored entries, dead included *)
  mutable floor : int;  (** largest time ever popped; scan starts here *)
  mutable dead_dropped : int;
  (* Last [find_min] result, so a peek followed by a pop scans once;
     [memo_bucket < 0] means invalid.  Invalidated on [add]/[pop] and
     re-checked against the bucket head (a cancel can kill it). *)
  mutable memo_time : int;
  mutable memo_seq : int;
  mutable memo_bucket : int;
}

let min_buckets = 64

let create ?(n_buckets = 256) ?(width = 1_024) ~live () =
  let rec pow2 n = if n >= n_buckets then n else pow2 (2 * n) in
  let n = pow2 min_buckets in
  {
    live;
    buckets = Array.make n Nil;
    mask = n - 1;
    width = (if width < 1 then 1 else width);
    size = 0;
    floor = 0;
    dead_dropped = 0;
    memo_time = 0;
    memo_seq = 0;
    memo_bucket = -1;
  }

let length t = t.size
let dead_dropped t = t.dead_dropped

let index t time = (time / t.width) land t.mask

let before ~time ~seq = function
  | Nil -> true
  | Cons c -> time < c.time || (time = c.time && seq < c.seq)

(* Insert keeping the bucket sorted ascending by (time, seq).  The scan
   is a top-level recursion (not a local closure) so inserting allocates
   exactly the one cell. *)
let rec insert_after ~time ~seq cell = function
  | Nil -> assert false
  | Cons c ->
    if before ~time ~seq c.next then begin
      (match cell with
      | Cons n -> n.next <- c.next
      | Nil -> assert false);
      c.next <- cell
    end
    else insert_after ~time ~seq cell c.next

let bucket_insert t b ~time ~seq v =
  let cell = Cons { time; seq; v; next = t.buckets.(b) } in
  if before ~time ~seq t.buckets.(b) then t.buckets.(b) <- cell
  else insert_after ~time ~seq cell t.buckets.(b)

(* Gather every live entry sorted ascending; drops dead ones. *)
let sorted_live t =
  let acc = ref [] in
  Array.iter
    (fun head ->
      let rec walk = function
        | Nil -> ()
        | Cons c ->
          if t.live c.v then acc := (c.time, c.seq, c.v) :: !acc
          else t.dead_dropped <- t.dead_dropped + 1;
          walk c.next
      in
      walk head)
    t.buckets;
  List.sort
    (fun (ta, sa, _) (tb, sb, _) -> if ta = tb then compare sa sb else compare ta tb)
    !acc

let rebuild t entries n_buckets =
  let n_live = List.length entries in
  let width =
    match entries with
    | [] | [ _ ] -> t.width
    | (t0, _, _) :: _ ->
      let tn, _, _ = List.nth entries (n_live - 1) in
      (* three times the average spacing keeps a handful of events per
         bucket for the usual periodic workloads *)
      let avg = (tn - t0) / (n_live - 1) in
      let w = 3 * avg in
      if w < 1 then 1 else w
  in
  t.buckets <- Array.make n_buckets Nil;
  t.mask <- n_buckets - 1;
  t.width <- width;
  t.size <- n_live;
  t.memo_bucket <- -1;
  (* insert in descending order so prepending leaves each bucket sorted
     ascending *)
  List.iter
    (fun (time, seq, v) ->
      let b = index t time in
      t.buckets.(b) <- Cons { time; seq; v; next = t.buckets.(b) })
    (List.rev entries)

let maybe_grow t =
  let n = t.mask + 1 in
  if t.size > 2 * n then rebuild t (sorted_live t) (2 * n)

let maybe_shrink t =
  let n = t.mask + 1 in
  if n > min_buckets && t.size < n / 8 then rebuild t (sorted_live t) (n / 2)

let add t ~time ~seq v =
  (* keep the memo when the new entry cannot beat it *)
  (if t.memo_bucket >= 0 then
     let mt = t.memo_time and ms = t.memo_seq in
     if not (mt < time || (mt = time && ms < seq)) then t.memo_bucket <- -1);
  bucket_insert t (index t time) ~time ~seq v;
  t.size <- t.size + 1;
  maybe_grow t

let rec drop_dead_head t b =
  match t.buckets.(b) with
  | Cons c when not (t.live c.v) ->
    t.buckets.(b) <- c.next;
    t.size <- t.size - 1;
    t.dead_dropped <- t.dead_dropped + 1;
    drop_dead_head t b
  | Nil | Cons _ -> ()

let remove_head t b =
  match t.buckets.(b) with
  | Nil -> assert false
  | Cons c ->
    t.buckets.(b) <- c.next;
    t.size <- t.size - 1

(* Direct search: minimum over all bucket heads (each bucket is sorted,
   so its head is its minimum).  O(n_buckets); the fallback for laps
   with no event in window.  Stores the result in the memo fields and
   returns whether one was found. *)
let direct_min t =
  t.memo_bucket <- -1;
  for b = 0 to t.mask do
    drop_dead_head t b;
    match t.buckets.(b) with
    | Nil -> ()
    | Cons c ->
      if
        t.memo_bucket < 0
        || c.time < t.memo_time
        || (c.time = t.memo_time && c.seq < t.memo_seq)
      then begin
        t.memo_time <- c.time;
        t.memo_seq <- c.seq;
        t.memo_bucket <- b
      end
  done;
  t.memo_bucket >= 0

(* One lap starting at the floor's bucket (bucket k of the lap owns the
   window ending at [lap_top + k * width]); a head inside its window is
   the global minimum — every other live entry's first admissible
   window lies above it.  Sparse laps fall back to {!direct_min}. *)
let rec scan_lap t start lap_top k =
  if k > t.mask then direct_min t
  else begin
    let b = (start + k) land t.mask in
    drop_dead_head t b;
    match t.buckets.(b) with
    | Cons c when c.time < lap_top + (k * t.width) ->
      t.memo_time <- c.time;
      t.memo_seq <- c.seq;
      t.memo_bucket <- b;
      true
    | Nil | Cons _ -> scan_lap t start lap_top (k + 1)
  end

let scan_min t =
  if t.size = 0 then begin
    t.memo_bucket <- -1;
    false
  end
  else
    scan_lap t (index t t.floor) (((t.floor / t.width) + 1) * t.width) 0

let find_min t =
  if t.memo_bucket >= 0 then begin
    (* still valid only if that exact entry is still the bucket head
       and alive — a cancel or an interleaved mutation voids it *)
    match t.buckets.(t.memo_bucket) with
    | Cons c when c.time = t.memo_time && c.seq = t.memo_seq && t.live c.v ->
      true
    | Nil | Cons _ -> scan_min t
  end
  else scan_min t

(* [_or] variants return [default] instead of boxing an option — the
   engine's run loop peeks and pops once per fired event, so the two
   [Some] cells would otherwise be a measurable share of the kernel's
   per-event allocation. *)
let pop_or t ~default =
  if not (find_min t) then default
  else begin
    let b = t.memo_bucket in
    let v = match t.buckets.(b) with Cons c -> c.v | Nil -> assert false in
    remove_head t b;
    t.floor <- t.memo_time;
    t.memo_bucket <- -1;
    maybe_shrink t;
    v
  end

let peek_or t ~default =
  if not (find_min t) then default
  else
    match t.buckets.(t.memo_bucket) with Cons c -> c.v | Nil -> default

let pop t =
  if not (find_min t) then None
  else begin
    let b = t.memo_bucket in
    let v = match t.buckets.(b) with Cons c -> c.v | Nil -> assert false in
    remove_head t b;
    t.floor <- t.memo_time;
    t.memo_bucket <- -1;
    maybe_shrink t;
    Some v
  end

let peek t =
  if not (find_min t) then None
  else
    match t.buckets.(t.memo_bucket) with Cons c -> Some c.v | Nil -> None

let iter t f =
  Array.iter
    (fun head ->
      let rec walk = function
        | Nil -> ()
        | Cons c ->
          f c.v;
          walk c.next
      in
      walk head)
    t.buckets
