(* Bucketed calendar queue (R. Brown, CACM 1988, adapted).

   Events hash into [n_buckets] buckets by [time / width mod n_buckets];
   each bucket is a singly-linked list kept sorted by [(time, seq)], so
   within one bucket the head is the bucket's minimum and two events at
   the same timestamp dequeue in scheduling order (seq is monotone).
   [pop] scans one lap of buckets starting at the bucket of the last
   popped time, accepting only heads that fall inside the bucket's
   window for this lap; a sparse queue falls back to a direct
   minimum-over-heads search.  Together this preserves the exact
   [(time, seq)] total order of the binary-heap backend — the
   differential and QCheck suites in test_sim_compiled.ml check both
   the FIFO-within-timestamp and the cross-bucket ordering laws.

   Cancelled entries are skipped lazily like the heap backend: [live]
   classifies entries, dead ones are dropped when they surface at a
   bucket head.  The structure resizes (and re-derives the bucket width
   from the live events' average spacing) when occupancy strays far
   from the bucket count. *)

type 'a cell =
  | Nil
  | Cons of { time : int64; seq : int; v : 'a; mutable next : 'a cell }

type 'a t = {
  live : 'a -> bool;
  mutable buckets : 'a cell array;
  mutable mask : int;  (** [n_buckets - 1]; bucket count is a power of two *)
  mutable width : int64;  (** nanoseconds per bucket *)
  mutable size : int;  (** stored entries, dead included *)
  mutable floor : int64;  (** largest time ever popped; scan starts here *)
  mutable dead_dropped : int;
  mutable memo : (int64 * int * int) option;
      (** last [find_min] result [(time, seq, bucket)], so a peek
          followed by a pop scans once; invalidated on [add]/[pop] and
          re-checked against the bucket head (a cancel can kill it) *)
}

let min_buckets = 64

let create ?(n_buckets = 256) ?(width = 1_024L) ~live () =
  let rec pow2 n = if n >= n_buckets then n else pow2 (2 * n) in
  let n = pow2 min_buckets in
  {
    live;
    buckets = Array.make n Nil;
    mask = n - 1;
    width = (if width < 1L then 1L else width);
    size = 0;
    floor = 0L;
    dead_dropped = 0;
    memo = None;
  }

let length t = t.size
let dead_dropped t = t.dead_dropped

let index t time = Int64.to_int (Int64.div time t.width) land t.mask

let before ~time ~seq = function
  | Nil -> true
  | Cons c -> time < c.time || (time = c.time && seq < c.seq)

(* Insert keeping the bucket sorted ascending by (time, seq). *)
let bucket_insert t b ~time ~seq v =
  let cell = Cons { time; seq; v; next = t.buckets.(b) } in
  if before ~time ~seq t.buckets.(b) then t.buckets.(b) <- cell
  else begin
    let rec after = function
      | Nil -> assert false
      | Cons c ->
        if before ~time ~seq c.next then begin
          (match cell with
          | Cons n -> n.next <- c.next
          | Nil -> assert false);
          c.next <- cell
        end
        else after c.next
    in
    after t.buckets.(b)
  end

(* Gather every live entry sorted ascending; drops dead ones. *)
let sorted_live t =
  let acc = ref [] in
  Array.iter
    (fun head ->
      let rec walk = function
        | Nil -> ()
        | Cons c ->
          if t.live c.v then acc := (c.time, c.seq, c.v) :: !acc
          else t.dead_dropped <- t.dead_dropped + 1;
          walk c.next
      in
      walk head)
    t.buckets;
  List.sort
    (fun (ta, sa, _) (tb, sb, _) -> if ta = tb then compare sa sb else compare ta tb)
    !acc

let rebuild t entries n_buckets =
  let n_live = List.length entries in
  let width =
    match entries with
    | [] | [ _ ] -> t.width
    | (t0, _, _) :: _ ->
      let tn, _, _ = List.nth entries (n_live - 1) in
      (* three times the average spacing keeps a handful of events per
         bucket for the usual periodic workloads *)
      let span = Int64.sub tn t0 in
      let avg = Int64.div span (Int64.of_int (n_live - 1)) in
      let w = Int64.mul 3L avg in
      if w < 1L then 1L else w
  in
  t.buckets <- Array.make n_buckets Nil;
  t.mask <- n_buckets - 1;
  t.width <- width;
  t.size <- n_live;
  t.memo <- None;
  (* insert in descending order so prepending leaves each bucket sorted
     ascending *)
  List.iter
    (fun (time, seq, v) ->
      let b = index t time in
      t.buckets.(b) <- Cons { time; seq; v; next = t.buckets.(b) })
    (List.rev entries)

let maybe_grow t =
  let n = t.mask + 1 in
  if t.size > 2 * n then rebuild t (sorted_live t) (2 * n)

let maybe_shrink t =
  let n = t.mask + 1 in
  if n > min_buckets && t.size < n / 8 then rebuild t (sorted_live t) (n / 2)

let add t ~time ~seq v =
  (* keep the memo when the new entry cannot beat it *)
  (match t.memo with
  | Some (mt, ms, _) when mt < time || (mt = time && ms < seq) -> ()
  | Some _ | None -> t.memo <- None);
  bucket_insert t (index t time) ~time ~seq v;
  t.size <- t.size + 1;
  maybe_grow t

let drop_dead_head t b =
  let rec loop () =
    match t.buckets.(b) with
    | Cons c when not (t.live c.v) ->
      t.buckets.(b) <- c.next;
      t.size <- t.size - 1;
      t.dead_dropped <- t.dead_dropped + 1;
      loop ()
    | Nil | Cons _ -> ()
  in
  loop ()

let remove_head t b =
  match t.buckets.(b) with
  | Nil -> assert false
  | Cons c ->
    t.buckets.(b) <- c.next;
    t.size <- t.size - 1

(* Direct search: minimum over all bucket heads (each bucket is sorted,
   so its head is its minimum).  O(n_buckets); the fallback for laps
   with no event in window. *)
let direct_min t =
  let best = ref None in
  for b = 0 to t.mask do
    drop_dead_head t b;
    match t.buckets.(b) with
    | Nil -> ()
    | Cons c -> (
      match !best with
      | Some (bt, bs, _) when bt < c.time || (bt = c.time && bs < c.seq) -> ()
      | _ -> best := Some (c.time, c.seq, b))
  done;
  !best

(* One lap starting at the floor's bucket (bucket k of the lap owns the
   window ending at [lap_top + k * width]); a head inside its window is
   the global minimum — every other live entry's first admissible
   window lies above it.  Sparse laps fall back to {!direct_min}. *)
let scan_min t =
  if t.size = 0 then None
  else begin
    let start = index t t.floor in
    let lap_top =
      Int64.mul (Int64.add (Int64.div t.floor t.width) 1L) t.width
    in
    let found = ref None in
    let k = ref 0 in
    while !found = None && !k <= t.mask do
      let b = (start + !k) land t.mask in
      drop_dead_head t b;
      (match t.buckets.(b) with
      | Cons c
        when c.time < Int64.add lap_top (Int64.mul (Int64.of_int !k) t.width)
        ->
        found := Some (c.time, c.seq, b)
      | Nil | Cons _ -> ());
      incr k
    done;
    match !found with None -> direct_min t | some -> some
  end

let find_min t =
  let fresh =
    match t.memo with
    | Some (time, seq, b) -> (
      (* still valid only if that exact entry is still the bucket head
         and alive — a cancel or an interleaved mutation voids it *)
      match t.buckets.(b) with
      | Cons c when c.time = time && c.seq = seq && t.live c.v -> t.memo
      | Nil | Cons _ -> scan_min t)
    | None -> scan_min t
  in
  t.memo <- fresh;
  fresh

let pop t =
  match find_min t with
  | None -> None
  | Some (time, _seq, b) ->
    let v = match t.buckets.(b) with Cons c -> c.v | Nil -> assert false in
    remove_head t b;
    t.floor <- time;
    t.memo <- None;
    maybe_shrink t;
    Some v

let peek t =
  match find_min t with
  | None -> None
  | Some (_, _, b) -> (
    match t.buckets.(b) with Cons c -> Some c.v | Nil -> None)

let iter t f =
  Array.iter
    (fun head ->
      let rec walk = function
        | Nil -> ()
        | Cons c ->
          f c.v;
          walk c.next
      in
      walk head)
    t.buckets
