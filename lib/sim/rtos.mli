(** Processing-element scheduler model.

    The paper's platform executes generated code on soft-core processors;
    its stated future work adds "real-time operating system ... in system
    processors".  This module models one PE's scheduler: jobs (bursts of
    cycles with a completion continuation) are submitted and executed
    under a policy:

    - {!Fifo}: run-to-completion in arrival order (the bare-metal
      main-loop of the original generated code);
    - {!Priority_preemptive}: the RTOS extension — a higher-priority
      arrival preempts the running job, which resumes later with its
      remaining cycles.

    Cycle durations derive from the PE clock frequency; an optional
    [perf_factor] scales cycle counts (an accelerator does the same work
    in fewer cycles). *)

type policy = Fifo | Priority_preemptive

type t

val create :
  engine:Engine.t ->
  name:string ->
  policy:policy ->
  frequency_mhz:int ->
  ?perf_factor:float ->
  ?obs:Obs.Scope.t ->
  unit ->
  t
(** Raises [Invalid_argument] on non-positive frequency or factor.
    [obs] receives per-scheduler metrics (ready-to-run latency,
    preemptions, queue depth) and one trace span per run slice on the
    ["rtos/<name>"] lane; defaults to a no-op scope. *)

val name : t -> string
val policy : t -> policy

val submit :
  t ->
  task:string ->
  priority:int ->
  ?flow:int ->
  cycles:int64 ->
  (unit -> unit) ->
  unit
(** Queue [cycles] of work on behalf of [task]; the continuation runs
    when the burst completes.  [cycles] are reference-platform cycles and
    are divided by the PE's [perf_factor].  Zero-cycle jobs complete
    after a one-cycle scheduling overhead.  [flow] (default [-1] = none)
    is the causal flow id the job belongs to ({!Obs.Flow}); when
    non-negative it is attached to the job's run-slice trace spans, so
    a flow can be followed through the scheduler lanes. *)

val submit_i :
  t ->
  task:string ->
  priority:int ->
  ?flow:int ->
  cycles:int ->
  (unit -> unit) ->
  unit
(** {!submit} with a native-int cycle count — the simulation hot path's
    entry point; no [int64] boxing. *)

val crash : t -> unit
(** Fail-stop fault: cancel the running slice (accounting its executed
    cycles like a preemption), discard every queued job, and drop any
    work submitted afterwards — completion continuations of discarded
    jobs never run.  Idempotent. *)

val crashed : t -> bool

val set_speed_scale : t -> float -> unit
(** Transient-slowdown fault: job bursts dispatched from now on take
    [scale] times as long in wall-clock ns (cycle accounting is
    unchanged).  [1.0] restores nominal speed; the running slice keeps
    the factor it was dispatched under.  Raises [Invalid_argument] on a
    non-positive scale. *)

val busy_ns : t -> int64
(** Accumulated busy time (updated when jobs complete or preempt). *)

val executed_cycles : t -> int64
(** Total (scaled) cycles executed to completion. *)

val queue_length : t -> int
(** Jobs waiting (excluding the running one). *)

val queue_high_water : t -> int
(** Peak ready-queue length since creation, maintained unconditionally
    (no metrics scope needed); reset only by {!crash} discarding the
    queue does NOT reset it — it is a lifetime peak. *)

val idle : t -> bool
val cycles_to_ns : t -> int64 -> int64
