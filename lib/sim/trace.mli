(** Simulation log — the "simulation log-file" of the paper's Figure 2.

    The instrumented runtime records execution and communication events
    here; the profiling tool later combines the log with the
    process-group information parsed from the model.  The textual file
    format is line-oriented so external tools (the paper used TCL) could
    consume it:
    {v
      E <time_ns> <process> <cycles>              execution burst
      S <time_ns> <sender> <receiver> <signal> <words> [<tag>]
      T <time_ns> <process> <from_state> <to_state>
      D <time_ns> <process> <signal>              discarded signal
      F <time_ns> <kind> <target> <info>          fault / recovery event
      R <time_ns> <sender> <receiver> <signal> <attempt>   retransmission
      L <time_ns> <flow> <stage> <where> <dur_ns>          flow hop
    v}
    Process names are fully qualified part names and must not contain
    whitespace. *)

type event =
  | Exec of { time : int64; process : string; cycles : int64 }
  | Signal of {
      time : int64;
      sender : string;
      receiver : string;
      signal : string;
      words : int;
      tag : int;
          (** correlation tag (e.g. a sequence number); [-1] = none *)
    }
  | State_change of { time : int64; process : string; from_ : string; to_ : string }
  | Discard of { time : int64; process : string; signal : string }
  | Fault of { time : int64; kind : string; target : string; info : string }
      (** Injection, detection, or recovery milestone.  [kind] is a
          lower_snake tag ([pe_crash], [watchdog_detect], [crc_reject],
          [crc_residual], [arq_giveup], [remap], [pe_slow_on],
          [pe_slow_off], ...); [target] names the PE / process /
          segment; [info] is one whitespace-free token of extra detail
          (["-"] when there is none). *)
  | Retransmit of {
      time : int64;
      sender : string;
      receiver : string;
      signal : string;
      attempt : int;  (** 1 = first retransmission *)
    }
  | Flow_hop of {
      time : int64;
      flow : int;  (** flow id, >= 0 *)
      stage : string;
          (** [born] (minted; [where_] = origin signal, [dur] = 0),
              [queue] / [process] / [transfer] / [retransmit] (one hop;
              [where_] = process / destination, [dur] = hop duration),
              or [end] (delivered into the environment; [where_] =
              terminal signal, [dur] = end-to-end latency).  Only
              recorded when causal flow tracing ({!Obs.Flow}) is on. *)
      where_ : string;
      dur : int64;  (** ns of simulated time, >= 0 *)
    }

type t

val create : unit -> t
val record : t -> event -> unit
val events : t -> event list
(** In recording order. *)

val length : t -> int
val clear : t -> unit

val total_cycles : t -> (string * int64) list
(** Cycles per process, sorted by process name. *)

val signal_counts : t -> ((string * string) * int) list
(** Signal counts per (sender, receiver) pair, sorted. *)

val event_to_line : event -> string
val event_of_line : string -> (event, string) result

val to_lines : t -> string list

val of_lines : string list -> (t, string) result
(** Blank lines are skipped; the first malformed line aborts parsing
    with an error of the form ["line N: <reason>"] (1-based, counting
    blank lines). *)

val save : t -> string -> unit
(** Write the log file. *)

val load : string -> (t, string) result
