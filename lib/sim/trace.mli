(** Simulation log — the "simulation log-file" of the paper's Figure 2.

    The instrumented runtime records execution and communication events
    here; the profiling tool later combines the log with the
    process-group information parsed from the model.  The textual file
    format is line-oriented so external tools (the paper used TCL) could
    consume it:
    {v
      E <time_ns> <process> <cycles>              execution burst
      S <time_ns> <sender> <receiver> <signal> <words> [<tag>]
      T <time_ns> <process> <from_state> <to_state>
      D <time_ns> <process> <signal>              discarded signal
      F <time_ns> <kind> <target> <info>          fault / recovery event
      R <time_ns> <sender> <receiver> <signal> <attempt>   retransmission
      L <time_ns> <flow> <stage> <where> <dur_ns>          flow hop
    v}
    Process names are fully qualified part names and must not contain
    whitespace. *)

type event =
  | Exec of { time : int64; process : string; cycles : int64 }
  | Signal of {
      time : int64;
      sender : string;
      receiver : string;
      signal : string;
      words : int;
      tag : int;
          (** correlation tag (e.g. a sequence number); [-1] = none *)
    }
  | State_change of { time : int64; process : string; from_ : string; to_ : string }
  | Discard of { time : int64; process : string; signal : string }
  | Fault of { time : int64; kind : string; target : string; info : string }
      (** Injection, detection, or recovery milestone.  [kind] is a
          lower_snake tag ([pe_crash], [watchdog_detect], [crc_reject],
          [crc_residual], [arq_giveup], [remap], [pe_slow_on],
          [pe_slow_off], ...); [target] names the PE / process /
          segment; [info] is one whitespace-free token of extra detail
          (["-"] when there is none). *)
  | Retransmit of {
      time : int64;
      sender : string;
      receiver : string;
      signal : string;
      attempt : int;  (** 1 = first retransmission *)
    }
  | Flow_hop of {
      time : int64;
      flow : int;  (** flow id, >= 0 *)
      stage : string;
          (** [born] (minted; [where_] = origin signal, [dur] = 0),
              [queue] / [process] / [transfer] / [retransmit] (one hop;
              [where_] = process / destination, [dur] = hop duration),
              or [end] (delivered into the environment; [where_] =
              terminal signal, [dur] = end-to-end latency).  Only
              recorded when causal flow tracing ({!Obs.Flow}) is on. *)
      where_ : string;
      dur : int64;  (** ns of simulated time, >= 0 *)
    }

type t

type backend =
  | Arena
      (** Struct-of-arrays store: int columns plus a string-interning
          table.  [record] is an (amortised) allocation-free append of
          interned ids; the textual lines are rendered lazily at
          {!save} / {!to_lines} time.  The default. *)
  | List  (** Legacy store: one heap-allocated {!event} per record. *)

val create : ?backend:backend -> unit -> t
(** [backend] defaults to {!Arena}.  Both backends render byte-identical
    log lines for the same event stream (they share the renderer). *)

val backend : t -> backend

val record : t -> event -> unit

val intern : t -> string -> int
(** Intern a string in the trace's table, returning its id.  Ids are
    stable for the lifetime of the trace ({!clear} keeps the table) and
    valid on either backend. *)

val interned : t -> int -> string
(** The string behind an id handed out by {!intern}. *)

(** Unboxed hot-path appenders: [time]/[cycles]/[dur] are plain int
    nanoseconds (no [int64] boxing), string arguments are ids from
    {!intern}.  Equivalent to {!record} of the corresponding event. *)

val record_exec : t -> time:int -> process:int -> cycles:int -> unit

val record_signal :
  t ->
  time:int ->
  sender:int ->
  receiver:int ->
  signal:int ->
  words:int ->
  tag:int ->
  unit

val record_state_change :
  t -> time:int -> process:int -> from_:int -> to_:int -> unit

val record_discard : t -> time:int -> process:int -> signal:int -> unit

val record_retransmit :
  t -> time:int -> sender:int -> receiver:int -> signal:int -> attempt:int -> unit

val record_flow_hop :
  t -> time:int -> flow:int -> stage:int -> where_:int -> dur:int -> unit

val events : t -> event list
(** In recording order.  Materialises the whole list — prefer {!iter} /
    {!fold} / {!get}, which decode one event at a time. *)

val iter : t -> (event -> unit) -> unit
(** Streaming view in recording order; decodes one event at a time. *)

val fold : t -> 'a -> ('a -> event -> 'a) -> 'a
(** [fold t init f] folds [f] over the events in recording order. *)

val get : t -> int -> event
(** [get t i] is the [i]th recorded event (0-based).  O(1) on the
    {!Arena} backend, O(n) on {!List}.  Raises [Invalid_argument] when
    out of range. *)

val length : t -> int
val clear : t -> unit
(** Drops the recorded events.  Interned ids stay valid. *)

val total_cycles : t -> (string * int64) list
(** Cycles per process, sorted by process name. *)

val signal_counts : t -> ((string * string) * int) list
(** Signal counts per (sender, receiver) pair, sorted. *)

val discard_counts : t -> (string * int) list
(** Discarded-signal counts per process, sorted by process name.  Like
    {!total_cycles} / {!signal_counts}, a column scan on the {!Arena}
    backend — no per-event decoding. *)

val event_to_line : event -> string
val event_of_line : string -> (event, string) result

val to_lines : t -> string list

val of_lines : ?backend:backend -> string list -> (t, string) result
(** Blank lines are skipped; the first malformed line aborts parsing
    with an error of the form ["line N: <reason>"] (1-based, counting
    blank lines).  The numbering covers every physical line handed in —
    in particular the last line of a file without a trailing newline
    gets the same number the editor shows for it. *)

val save : t -> string -> unit
(** Write the log file. *)

val load : ?backend:backend -> string -> (t, string) result
