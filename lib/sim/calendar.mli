(** Bucketed calendar queue (Brown 1988, adapted).

    Priority queue over [(time, seq)] keys (times are native-int ns,
    like {!Engine}'s internal clock) with O(1) expected enqueue
    and dequeue for the quasi-periodic event populations a simulation
    produces.  Events hash into time-width buckets; each bucket stays
    sorted, so same-timestamp events dequeue in scheduling (seq) order
    and the dequeue order is the exact [(time, seq)] total order of the
    binary-heap backend — {!Engine} can swap one for the other without
    observable difference.

    Keys must never go below the largest time already popped (the
    discrete-event invariant: you cannot schedule in the past); [add]
    does not check this.

    Cancellation is lazy, like the heap backend: [live] (given at
    {!create}) classifies entries, dead ones are dropped when they reach
    a bucket head. *)

type 'a t

val create : ?n_buckets:int -> ?width:int -> live:('a -> bool) -> unit -> 'a t
(** [n_buckets] rounds up to a power of two (min 64); [width] is the
    initial bucket width in ns.  Both adapt as the queue resizes, so
    they are starting points, not tuning requirements. *)

val add : 'a t -> time:int -> seq:int -> 'a -> unit
(** O(bucket occupancy); grows (and re-derives the width from the live
    events' average spacing) when occupancy exceeds twice the bucket
    count. *)

val pop : 'a t -> 'a option
(** Remove and return the live minimum; [None] iff no live entry
    remains (all dead entries are dropped before answering [None]). *)

val peek : 'a t -> 'a option
(** Like {!pop} without removing. *)

val pop_or : 'a t -> default:'a -> 'a
(** Like {!pop}, but returns [default] when empty instead of boxing an
    option — the engine's per-event hot path. *)

val peek_or : 'a t -> default:'a -> 'a
(** Like {!peek}, but returns [default] when empty. *)

val length : 'a t -> int
(** Stored entries, dead ones included (matches the heap's size). *)

val iter : 'a t -> ('a -> unit) -> unit
(** Every stored entry, dead ones included, in no particular order. *)

val dead_dropped : 'a t -> int
(** Cancelled entries dropped so far (for kernel metrics). *)
