(* Growable ring buffer used for per-process signal mailboxes.

   FIFO like [Queue], but enqueue/dequeue touch a preallocated array
   instead of allocating a cell per element — signal delivery is the
   simulation's hot path.  Popped slots are overwritten with the dummy
   so the buffer never retains references to handled events. *)

type 'a t = {
  mutable buf : 'a array;
  mutable head : int;  (** index of the oldest element *)
  mutable len : int;
  dummy : 'a;
}

let create ?(capacity = 16) ~dummy () =
  let rec pow2 n = if n >= capacity then n else pow2 (2 * n) in
  { buf = Array.make (pow2 8) dummy; head = 0; len = 0; dummy }

let length t = t.len
let is_empty t = t.len = 0

let grow t =
  let cap = Array.length t.buf in
  let bigger = Array.make (2 * cap) t.dummy in
  for i = 0 to t.len - 1 do
    bigger.(i) <- t.buf.((t.head + i) land (cap - 1))
  done;
  t.buf <- bigger;
  t.head <- 0

let push t v =
  if t.len = Array.length t.buf then grow t;
  t.buf.((t.head + t.len) land (Array.length t.buf - 1)) <- v;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Sim.Mailbox.pop: empty";
  let v = t.buf.(t.head) in
  t.buf.(t.head) <- t.dummy;
  t.head <- (t.head + 1) land (Array.length t.buf - 1);
  t.len <- t.len - 1;
  v

let clear t =
  while t.len > 0 do
    ignore (pop t)
  done
