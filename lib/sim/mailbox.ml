(* Growable ring buffer used for per-process signal mailboxes.

   FIFO like [Queue], but enqueue/dequeue touch a preallocated array
   instead of allocating a cell per element — signal delivery is the
   simulation's hot path.  Popped slots are overwritten with the dummy
   so the buffer never retains references to handled events. *)

type 'a t = {
  mutable buf : 'a array;
  mutable head : int;  (** index of the oldest element *)
  mutable len : int;
  mutable high_water : int;
  dummy : 'a;
}

let create ?(capacity = 16) ~dummy () =
  let rec pow2 n = if n >= capacity then n else pow2 (2 * n) in
  { buf = Array.make (pow2 8) dummy; head = 0; len = 0; high_water = 0; dummy }

let length t = t.len
let is_empty t = t.len = 0
let high_water t = t.high_water

let grow t =
  let cap = Array.length t.buf in
  let bigger = Array.make (2 * cap) t.dummy in
  for i = 0 to t.len - 1 do
    bigger.(i) <- t.buf.((t.head + i) land (cap - 1))
  done;
  t.buf <- bigger;
  t.head <- 0

let push t v =
  if t.len = Array.length t.buf then grow t;
  t.buf.((t.head + t.len) land (Array.length t.buf - 1)) <- v;
  t.len <- t.len + 1;
  if t.len > t.high_water then t.high_water <- t.len

let pop t =
  if t.len = 0 then invalid_arg "Sim.Mailbox.pop: empty";
  let v = t.buf.(t.head) in
  t.buf.(t.head) <- t.dummy;
  t.head <- (t.head + 1) land (Array.length t.buf - 1);
  t.len <- t.len - 1;
  v

let clear t =
  while t.len > 0 do
    ignore (pop t)
  done;
  t.high_water <- 0

(* Flat rings: same discipline, but each entry is three plain-int
   fields plus one boxed payload spread over four parallel columns, so
   pending signals need no per-entry record.  Field reads ([head_a] ..)
   are separate calls to keep pops tuple-free. *)
module Flat = struct
  type 'a t = {
    mutable a : int array;
    mutable b : int array;
    mutable c : int array;
    mutable payload : 'a array;
    mutable head : int;
    mutable len : int;
    mutable high_water : int;
    dummy : 'a;
  }

  let create ?(capacity = 16) ~dummy () =
    let rec pow2 n = if n >= capacity then n else pow2 (2 * n) in
    let cap = pow2 8 in
    {
      a = Array.make cap 0;
      b = Array.make cap 0;
      c = Array.make cap 0;
      payload = Array.make cap dummy;
      head = 0;
      len = 0;
      high_water = 0;
      dummy;
    }

  let length t = t.len
  let is_empty t = t.len = 0
  let high_water t = t.high_water

  let grow t =
    let cap = Array.length t.a in
    let bigger_int src =
      let dst = Array.make (2 * cap) 0 in
      for i = 0 to t.len - 1 do
        dst.(i) <- src.((t.head + i) land (cap - 1))
      done;
      dst
    in
    let payload = Array.make (2 * cap) t.dummy in
    for i = 0 to t.len - 1 do
      payload.(i) <- t.payload.((t.head + i) land (cap - 1))
    done;
    t.a <- bigger_int t.a;
    t.b <- bigger_int t.b;
    t.c <- bigger_int t.c;
    t.payload <- payload;
    t.head <- 0

  let push t a b c payload =
    if t.len = Array.length t.a then grow t;
    let i = (t.head + t.len) land (Array.length t.a - 1) in
    Array.unsafe_set t.a i a;
    Array.unsafe_set t.b i b;
    Array.unsafe_set t.c i c;
    Array.unsafe_set t.payload i payload;
    t.len <- t.len + 1;
    if t.len > t.high_water then t.high_water <- t.len

  let head_a t =
    if t.len = 0 then invalid_arg "Sim.Mailbox.Flat.head_a: empty";
    Array.unsafe_get t.a t.head

  let head_b t =
    if t.len = 0 then invalid_arg "Sim.Mailbox.Flat.head_b: empty";
    Array.unsafe_get t.b t.head

  let head_c t =
    if t.len = 0 then invalid_arg "Sim.Mailbox.Flat.head_c: empty";
    Array.unsafe_get t.c t.head

  let pop t =
    if t.len = 0 then invalid_arg "Sim.Mailbox.Flat.pop: empty";
    let v = Array.unsafe_get t.payload t.head in
    Array.unsafe_set t.payload t.head t.dummy;
    t.head <- (t.head + 1) land (Array.length t.a - 1);
    t.len <- t.len - 1;
    v

  let clear t =
    while t.len > 0 do
      ignore (pop t)
    done;
    t.high_water <- 0
end
