(** Growable ring-buffer FIFO for per-process signal mailboxes.

    Same contract as [Queue] for push/pop order, but backed by a
    preallocated array (capacities are powers of two), so the
    simulation's signal-delivery hot path does not allocate a cell per
    event.  Not thread-safe — the simulation is single-threaded. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [dummy] fills unused slots (and overwrites popped ones, so handled
    events are not retained); [capacity] rounds up to a power of two,
    minimum 8. *)

val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a
(** Oldest element; raises [Invalid_argument] when empty. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val high_water : 'a t -> int
(** Peak {!length} observed since creation or the last {!clear} —
    survives wrap-around and growth, costs one compare per push. *)

val clear : 'a t -> unit
(** Empties the ring and resets {!high_water} to 0. *)

(** Flat rings: three plain-int fields plus one payload per entry,
    stored in parallel columns, so a pending-signal row needs no heap
    record.  Read the head's int fields with [head_a]/[head_b]/[head_c]
    before [pop]ping the payload — separate calls keep pops free of
    tuple allocation. *)
module Flat : sig
  type 'a t

  val create : ?capacity:int -> dummy:'a -> unit -> 'a t
  val push : 'a t -> int -> int -> int -> 'a -> unit

  val head_a : 'a t -> int
  val head_b : 'a t -> int
  val head_c : 'a t -> int
  (** Int fields of the oldest entry; raise [Invalid_argument] when
      empty. *)

  val pop : 'a t -> 'a
  (** Payload of the oldest entry, advancing the ring. *)

  val length : 'a t -> int
  val is_empty : 'a t -> bool
  val high_water : 'a t -> int
  val clear : 'a t -> unit
end
