(** Growable ring-buffer FIFO for per-process signal mailboxes.

    Same contract as [Queue] for push/pop order, but backed by a
    preallocated array (capacities are powers of two), so the
    simulation's signal-delivery hot path does not allocate a cell per
    event.  Not thread-safe — the simulation is single-threaded. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [dummy] fills unused slots (and overwrites popped ones, so handled
    events are not retained); [capacity] rounds up to a power of two,
    minimum 8. *)

val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a
(** Oldest element; raises [Invalid_argument] when empty. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val clear : 'a t -> unit
