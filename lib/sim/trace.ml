type event =
  | Exec of { time : int64; process : string; cycles : int64 }
  | Signal of {
      time : int64;
      sender : string;
      receiver : string;
      signal : string;
      words : int;
      tag : int;
    }
  | State_change of { time : int64; process : string; from_ : string; to_ : string }
  | Discard of { time : int64; process : string; signal : string }
  | Fault of { time : int64; kind : string; target : string; info : string }
  | Retransmit of {
      time : int64;
      sender : string;
      receiver : string;
      signal : string;
      attempt : int;
    }
  | Flow_hop of {
      time : int64;
      flow : int;
      stage : string;
      where_ : string;
      dur : int64;
    }

type backend = Arena | List

(* Event kinds, one per log-line letter.  The arena is a struct-of-
   arrays: one int column per field slot, a byte per kind, string
   fields replaced by interned ids.  Appending is therefore a handful
   of array stores — no per-event heap record — and the textual line is
   only rendered when someone asks for it. *)
let k_exec = 0
let k_signal = 1
let k_state = 2
let k_discard = 3
let k_fault = 4
let k_retransmit = 5
let k_flow = 6

type t = {
  backend : backend;
  (* String interning, shared by both backends so ids handed out by
     [intern] stay valid whichever store is active. *)
  tbl : (string, int) Hashtbl.t;
  mutable strs : string array;
  mutable nstrs : int;
  (* Arena columns.  [time] doubles as the capacity witness; [f0..f4]
     hold per-kind fields (ids, counts, durations) as plain ints. *)
  mutable n : int;
  mutable kind : Bytes.t;
  mutable time : int array;
  mutable f0 : int array;
  mutable f1 : int array;
  mutable f2 : int array;
  mutable f3 : int array;
  mutable f4 : int array;
  (* Rare int64 values outside the native-int range keep full fidelity
     here, keyed by event index; checked only when non-empty. *)
  overflow : (int, event) Hashtbl.t;
  (* Legacy list backend. *)
  mutable events_rev : event list;
  mutable list_len : int;
}

let initial_capacity = 256

let create ?(backend = Arena) () =
  let cap = match backend with Arena -> initial_capacity | List -> 0 in
  {
    backend;
    tbl = Hashtbl.create 64;
    strs = Array.make 64 "";
    nstrs = 0;
    n = 0;
    kind = Bytes.make cap '\000';
    time = Array.make cap 0;
    f0 = Array.make cap 0;
    f1 = Array.make cap 0;
    f2 = Array.make cap 0;
    f3 = Array.make cap 0;
    f4 = Array.make cap 0;
    overflow = Hashtbl.create 1;
    events_rev = [];
    list_len = 0;
  }

let backend t = t.backend

let intern t s =
  match Hashtbl.find t.tbl s with
  | id -> id
  | exception Not_found ->
    let id = t.nstrs in
    if id = Array.length t.strs then begin
      let strs = Array.make (2 * id) "" in
      Array.blit t.strs 0 strs 0 id;
      t.strs <- strs
    end;
    t.strs.(id) <- s;
    t.nstrs <- id + 1;
    Hashtbl.add t.tbl s id;
    id

let interned t id = t.strs.(id)

let grow t =
  let cap = Array.length t.time in
  let cap' = if cap = 0 then initial_capacity else 2 * cap in
  let extend a =
    let a' = Array.make cap' 0 in
    Array.blit a 0 a' 0 cap;
    a'
  in
  let kind' = Bytes.make cap' '\000' in
  Bytes.blit t.kind 0 kind' 0 cap;
  t.kind <- kind';
  t.time <- extend t.time;
  t.f0 <- extend t.f0;
  t.f1 <- extend t.f1;
  t.f2 <- extend t.f2;
  t.f3 <- extend t.f3;
  t.f4 <- extend t.f4

let[@inline] push t k time f0 f1 f2 f3 f4 =
  if t.n = Array.length t.time then grow t;
  let i = t.n in
  Bytes.unsafe_set t.kind i (Char.unsafe_chr k);
  Array.unsafe_set t.time i time;
  Array.unsafe_set t.f0 i f0;
  Array.unsafe_set t.f1 i f1;
  Array.unsafe_set t.f2 i f2;
  Array.unsafe_set t.f3 i f3;
  Array.unsafe_set t.f4 i f4;
  t.n <- i + 1

let fits x = Int64.equal (Int64.of_int (Int64.to_int x)) x

let record_arena t event =
  let i = t.n in
  (match event with
  | Exec { time; process; cycles } ->
    push t k_exec (Int64.to_int time) (intern t process) (Int64.to_int cycles)
      0 0 0;
    if not (fits time && fits cycles) then Hashtbl.replace t.overflow i event
  | Signal { time; sender; receiver; signal; words; tag } ->
    push t k_signal (Int64.to_int time) (intern t sender) (intern t receiver)
      (intern t signal) words tag;
    if not (fits time) then Hashtbl.replace t.overflow i event
  | State_change { time; process; from_; to_ } ->
    push t k_state (Int64.to_int time) (intern t process) (intern t from_)
      (intern t to_) 0 0;
    if not (fits time) then Hashtbl.replace t.overflow i event
  | Discard { time; process; signal } ->
    push t k_discard (Int64.to_int time) (intern t process) (intern t signal) 0
      0 0;
    if not (fits time) then Hashtbl.replace t.overflow i event
  | Fault { time; kind; target; info } ->
    push t k_fault (Int64.to_int time) (intern t kind) (intern t target)
      (intern t info) 0 0;
    if not (fits time) then Hashtbl.replace t.overflow i event
  | Retransmit { time; sender; receiver; signal; attempt } ->
    push t k_retransmit (Int64.to_int time) (intern t sender)
      (intern t receiver) (intern t signal) attempt 0;
    if not (fits time) then Hashtbl.replace t.overflow i event
  | Flow_hop { time; flow; stage; where_; dur } ->
    push t k_flow (Int64.to_int time) flow (intern t stage) (intern t where_)
      (Int64.to_int dur) 0;
    if not (fits time && fits dur) then Hashtbl.replace t.overflow i event)

let record t event =
  match t.backend with
  | Arena -> record_arena t event
  | List ->
    t.events_rev <- event :: t.events_rev;
    t.list_len <- t.list_len + 1

(* Unboxed hot-path appenders: times and durations are plain int ns,
   strings are pre-interned ids.  On the legacy backend they rebuild
   the variant so both backends observe the same stream. *)

let record_exec t ~time ~process ~cycles =
  match t.backend with
  | Arena -> push t k_exec time process cycles 0 0 0
  | List ->
    record t
      (Exec
         {
           time = Int64.of_int time;
           process = interned t process;
           cycles = Int64.of_int cycles;
         })

let record_signal t ~time ~sender ~receiver ~signal ~words ~tag =
  match t.backend with
  | Arena -> push t k_signal time sender receiver signal words tag
  | List ->
    record t
      (Signal
         {
           time = Int64.of_int time;
           sender = interned t sender;
           receiver = interned t receiver;
           signal = interned t signal;
           words;
           tag;
         })

let record_state_change t ~time ~process ~from_ ~to_ =
  match t.backend with
  | Arena -> push t k_state time process from_ to_ 0 0
  | List ->
    record t
      (State_change
         {
           time = Int64.of_int time;
           process = interned t process;
           from_ = interned t from_;
           to_ = interned t to_;
         })

let record_discard t ~time ~process ~signal =
  match t.backend with
  | Arena -> push t k_discard time process signal 0 0 0
  | List ->
    record t
      (Discard
         {
           time = Int64.of_int time;
           process = interned t process;
           signal = interned t signal;
         })

let record_retransmit t ~time ~sender ~receiver ~signal ~attempt =
  match t.backend with
  | Arena -> push t k_retransmit time sender receiver signal attempt 0
  | List ->
    record t
      (Retransmit
         {
           time = Int64.of_int time;
           sender = interned t sender;
           receiver = interned t receiver;
           signal = interned t signal;
           attempt;
         })

let record_flow_hop t ~time ~flow ~stage ~where_ ~dur =
  match t.backend with
  | Arena -> push t k_flow time flow stage where_ dur 0
  | List ->
    record t
      (Flow_hop
         {
           time = Int64.of_int time;
           flow;
           stage = interned t stage;
           where_ = interned t where_;
           dur = Int64.of_int dur;
         })

let length t = match t.backend with Arena -> t.n | List -> t.list_len

let clear t =
  t.n <- 0;
  Hashtbl.reset t.overflow;
  t.events_rev <- [];
  t.list_len <- 0

(* Decoding an arena row back into the [event] view. *)
let decode_cols t i =
  let s id = Array.unsafe_get t.strs id in
  let time = Int64.of_int (Array.unsafe_get t.time i) in
  let f0 = Array.unsafe_get t.f0 i in
  let f1 = Array.unsafe_get t.f1 i in
  let f2 = Array.unsafe_get t.f2 i in
  let f3 = Array.unsafe_get t.f3 i in
  match Char.code (Bytes.unsafe_get t.kind i) with
  | 0 -> Exec { time; process = s f0; cycles = Int64.of_int f1 }
  | 1 ->
    Signal
      {
        time;
        sender = s f0;
        receiver = s f1;
        signal = s f2;
        words = f3;
        tag = Array.unsafe_get t.f4 i;
      }
  | 2 -> State_change { time; process = s f0; from_ = s f1; to_ = s f2 }
  | 3 -> Discard { time; process = s f0; signal = s f1 }
  | 4 -> Fault { time; kind = s f0; target = s f1; info = s f2 }
  | 5 ->
    Retransmit
      { time; sender = s f0; receiver = s f1; signal = s f2; attempt = f3 }
  | _ ->
    Flow_hop { time; flow = f0; stage = s f1; where_ = s f2; dur = Int64.of_int f3 }

let get_arena t i =
  if Hashtbl.length t.overflow = 0 then decode_cols t i
  else
    match Hashtbl.find_opt t.overflow i with
    | Some event -> event
    | None -> decode_cols t i

let iter t f =
  match t.backend with
  | Arena ->
    for i = 0 to t.n - 1 do
      f (get_arena t i)
    done
  | List -> List.iter f (List.rev t.events_rev)

let fold t init f =
  match t.backend with
  | Arena ->
    let acc = ref init in
    for i = 0 to t.n - 1 do
      acc := f !acc (get_arena t i)
    done;
    !acc
  | List -> List.fold_left f init (List.rev t.events_rev)

let events t =
  match t.backend with
  | Arena -> List.init t.n (fun i -> get_arena t i)
  | List -> List.rev t.events_rev

let get t i =
  match t.backend with
  | Arena ->
    if i < 0 || i >= t.n then invalid_arg "Sim.Trace.get";
    get_arena t i
  | List ->
    if i < 0 || i >= t.list_len then invalid_arg "Sim.Trace.get";
    List.nth (List.rev t.events_rev) i

(* The aggregations below have two implementations: a column scan over
   the arena (no per-event decode, accumulators indexed by interned id)
   and a generic [iter]-based fallback used by the list backend and by
   arenas holding out-of-range int64 rows (the overflow table keeps the
   exact values, so the generic path must decode).  Both orders of
   summation are over ints, so the results are identical. *)

let total_cycles_generic t =
  let table = Hashtbl.create 16 in
  iter t (fun event ->
      match event with
      | Exec { process; cycles; _ } ->
        let current =
          Option.value ~default:0L (Hashtbl.find_opt table process)
        in
        Hashtbl.replace table process (Int64.add current cycles)
      | Signal _ | State_change _ | Discard _ | Fault _ | Retransmit _
      | Flow_hop _ -> ());
  Hashtbl.fold (fun process cycles acc -> (process, cycles) :: acc) table []
  |> List.sort compare

let total_cycles t =
  match t.backend with
  | Arena when Hashtbl.length t.overflow = 0 ->
    let cycles = Array.make (max 1 t.nstrs) 0 in
    let seen = Array.make (max 1 t.nstrs) false in
    for i = 0 to t.n - 1 do
      if Bytes.unsafe_get t.kind i = '\000' (* k_exec *) then begin
        let id = Array.unsafe_get t.f0 i in
        cycles.(id) <- cycles.(id) + Array.unsafe_get t.f1 i;
        seen.(id) <- true
      end
    done;
    let acc = ref [] in
    for id = t.nstrs - 1 downto 0 do
      if seen.(id) then
        acc := (t.strs.(id), Int64.of_int cycles.(id)) :: !acc
    done;
    List.sort compare !acc
  | Arena | List -> total_cycles_generic t

let signal_counts_generic t =
  let table = Hashtbl.create 16 in
  iter t (fun event ->
      match event with
      | Signal { sender; receiver; _ } ->
        let key = (sender, receiver) in
        let current = Option.value ~default:0 (Hashtbl.find_opt table key) in
        Hashtbl.replace table key (current + 1)
      | Exec _ | State_change _ | Discard _ | Fault _ | Retransmit _
      | Flow_hop _ -> ());
  Hashtbl.fold (fun key count acc -> (key, count) :: acc) table []
  |> List.sort compare

let signal_counts t =
  match t.backend with
  | Arena when Hashtbl.length t.overflow = 0 ->
    (* (sender, receiver) packs into one immediate int key; [nstrs] is
       fixed during the scan (no interning happens here) *)
    let m = max 1 t.nstrs in
    let table = Hashtbl.create 16 in
    for i = 0 to t.n - 1 do
      if Bytes.unsafe_get t.kind i = '\001' (* k_signal *) then begin
        let key = (Array.unsafe_get t.f0 i * m) + Array.unsafe_get t.f1 i in
        match Hashtbl.find table key with
        | r -> incr r
        | exception Not_found -> Hashtbl.add table key (ref 1)
      end
    done;
    Hashtbl.fold
      (fun key r acc -> ((t.strs.(key / m), t.strs.(key mod m)), !r) :: acc)
      table []
    |> List.sort compare
  | Arena | List -> signal_counts_generic t

let discard_counts t =
  match t.backend with
  | Arena when Hashtbl.length t.overflow = 0 ->
    let counts = Array.make (max 1 t.nstrs) 0 in
    for i = 0 to t.n - 1 do
      if Bytes.unsafe_get t.kind i = '\003' (* k_discard *) then begin
        let id = Array.unsafe_get t.f0 i in
        counts.(id) <- counts.(id) + 1
      end
    done;
    let acc = ref [] in
    for id = t.nstrs - 1 downto 0 do
      if counts.(id) > 0 then acc := (t.strs.(id), counts.(id)) :: !acc
    done;
    List.sort compare !acc
  | Arena | List ->
    let table = Hashtbl.create 8 in
    iter t (fun event ->
        match event with
        | Discard { process; _ } ->
          let current =
            Option.value ~default:0 (Hashtbl.find_opt table process)
          in
          Hashtbl.replace table process (current + 1)
        | Exec _ | Signal _ | State_change _ | Fault _ | Retransmit _
        | Flow_hop _ -> ());
    Hashtbl.fold (fun p c acc -> (p, c) :: acc) table []
    |> List.sort compare

(* Rendering goes through this single function for every backend, so
   byte-identical log lines are a property of the renderer, not of the
   store: arena and list traces of the same event stream cannot drift. *)
let event_to_line = function
  | Exec { time; process; cycles } ->
    Printf.sprintf "E %Ld %s %Ld" time process cycles
  | Signal { time; sender; receiver; signal; words; tag } ->
    if tag < 0 then
      Printf.sprintf "S %Ld %s %s %s %d" time sender receiver signal words
    else
      Printf.sprintf "S %Ld %s %s %s %d %d" time sender receiver signal words tag
  | State_change { time; process; from_; to_ } ->
    Printf.sprintf "T %Ld %s %s %s" time process from_ to_
  | Discard { time; process; signal } ->
    Printf.sprintf "D %Ld %s %s" time process signal
  | Fault { time; kind; target; info } ->
    Printf.sprintf "F %Ld %s %s %s" time kind target
      (if info = "" then "-" else info)
  | Retransmit { time; sender; receiver; signal; attempt } ->
    Printf.sprintf "R %Ld %s %s %s %d" time sender receiver signal attempt
  | Flow_hop { time; flow; stage; where_; dur } ->
    Printf.sprintf "L %Ld %d %s %s %Ld" time flow stage where_ dur

let event_of_line line =
  let fields =
    String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
  in
  let time_of s =
    match Int64.of_string_opt s with
    | Some t -> Ok t
    | None -> Error (Printf.sprintf "bad time %S in %S" s line)
  in
  match fields with
  | [ "E"; time; process; cycles ] -> (
    match time_of time, Int64.of_string_opt cycles with
    | Ok time, Some cycles -> Ok (Exec { time; process; cycles })
    | Error e, _ -> Error e
    | _, None -> Error (Printf.sprintf "bad cycles in %S" line))
  | [ "S"; time; sender; receiver; signal; words ] -> (
    match time_of time, int_of_string_opt words with
    | Ok time, Some words ->
      Ok (Signal { time; sender; receiver; signal; words; tag = -1 })
    | Error e, _ -> Error e
    | _, None -> Error (Printf.sprintf "bad words in %S" line))
  | [ "S"; time; sender; receiver; signal; words; tag ] -> (
    match time_of time, int_of_string_opt words, int_of_string_opt tag with
    | Ok time, Some words, Some tag when tag >= 0 ->
      Ok (Signal { time; sender; receiver; signal; words; tag })
    | Error e, _, _ -> Error e
    | _, _, _ -> Error (Printf.sprintf "bad words or tag in %S" line))
  | [ "T"; time; process; from_; to_ ] ->
    Result.map (fun time -> State_change { time; process; from_; to_ }) (time_of time)
  | [ "D"; time; process; signal ] ->
    Result.map (fun time -> Discard { time; process; signal }) (time_of time)
  | [ "F"; time; kind; target; info ] ->
    Result.map (fun time -> Fault { time; kind; target; info }) (time_of time)
  | [ "R"; time; sender; receiver; signal; attempt ] -> (
    match time_of time, int_of_string_opt attempt with
    | Ok time, Some attempt when attempt >= 0 ->
      Ok (Retransmit { time; sender; receiver; signal; attempt })
    | Error e, _ -> Error e
    | _, _ -> Error (Printf.sprintf "bad attempt in %S" line))
  | [ "L"; time; flow; stage; where_; dur ] -> (
    match time_of time, int_of_string_opt flow, Int64.of_string_opt dur with
    | Ok time, Some flow, Some dur when flow >= 0 && dur >= 0L ->
      Ok (Flow_hop { time; flow; stage; where_; dur })
    | Error e, _, _ -> Error e
    | _, _, _ -> Error (Printf.sprintf "bad flow or dur in %S" line))
  | _ -> Error (Printf.sprintf "unrecognised log line %S" line)

let to_lines t =
  let acc = ref [] in
  iter t (fun event -> acc := event_to_line event :: !acc);
  List.rev !acc

let of_lines ?backend lines =
  let t = create ?backend () in
  (* [n] counts every physical line, blank or not, so the reported
     number matches the 1-based position in the file — including the
     last line of a file with no trailing newline, which arrives here
     as a final element with no successor. *)
  let rec loop n = function
    | [] -> Ok t
    | line :: rest when String.trim line = "" -> loop (n + 1) rest
    | line :: rest -> (
      match event_of_line line with
      | Ok event ->
        record t event;
        loop (n + 1) rest
      | Error e -> Error (Printf.sprintf "line %d: %s" n e))
  in
  loop 1 lines

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      iter t (fun event ->
          output_string oc (event_to_line event);
          output_char oc '\n'))

let load ?backend path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec read acc =
          match input_line ic with
          | line -> read (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        of_lines ?backend (read []))
