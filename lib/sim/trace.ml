type event =
  | Exec of { time : int64; process : string; cycles : int64 }
  | Signal of {
      time : int64;
      sender : string;
      receiver : string;
      signal : string;
      words : int;
      tag : int;
    }
  | State_change of { time : int64; process : string; from_ : string; to_ : string }
  | Discard of { time : int64; process : string; signal : string }
  | Fault of { time : int64; kind : string; target : string; info : string }
  | Retransmit of {
      time : int64;
      sender : string;
      receiver : string;
      signal : string;
      attempt : int;
    }
  | Flow_hop of {
      time : int64;
      flow : int;
      stage : string;
      where_ : string;
      dur : int64;
    }

type t = { mutable events : event list; mutable length : int }

let create () = { events = []; length = 0 }

let record t event =
  t.events <- event :: t.events;
  t.length <- t.length + 1

let events t = List.rev t.events
let length t = t.length

let clear t =
  t.events <- [];
  t.length <- 0

let total_cycles t =
  let table = Hashtbl.create 16 in
  List.iter
    (fun event ->
      match event with
      | Exec { process; cycles; _ } ->
        let current =
          Option.value ~default:0L (Hashtbl.find_opt table process)
        in
        Hashtbl.replace table process (Int64.add current cycles)
      | Signal _ | State_change _ | Discard _ | Fault _ | Retransmit _
      | Flow_hop _ -> ())
    t.events;
  Hashtbl.fold (fun process cycles acc -> (process, cycles) :: acc) table []
  |> List.sort compare

let signal_counts t =
  let table = Hashtbl.create 16 in
  List.iter
    (fun event ->
      match event with
      | Signal { sender; receiver; _ } ->
        let key = (sender, receiver) in
        let current = Option.value ~default:0 (Hashtbl.find_opt table key) in
        Hashtbl.replace table key (current + 1)
      | Exec _ | State_change _ | Discard _ | Fault _ | Retransmit _
      | Flow_hop _ -> ())
    t.events;
  Hashtbl.fold (fun key count acc -> (key, count) :: acc) table []
  |> List.sort compare

let event_to_line = function
  | Exec { time; process; cycles } ->
    Printf.sprintf "E %Ld %s %Ld" time process cycles
  | Signal { time; sender; receiver; signal; words; tag } ->
    if tag < 0 then
      Printf.sprintf "S %Ld %s %s %s %d" time sender receiver signal words
    else
      Printf.sprintf "S %Ld %s %s %s %d %d" time sender receiver signal words tag
  | State_change { time; process; from_; to_ } ->
    Printf.sprintf "T %Ld %s %s %s" time process from_ to_
  | Discard { time; process; signal } ->
    Printf.sprintf "D %Ld %s %s" time process signal
  | Fault { time; kind; target; info } ->
    Printf.sprintf "F %Ld %s %s %s" time kind target
      (if info = "" then "-" else info)
  | Retransmit { time; sender; receiver; signal; attempt } ->
    Printf.sprintf "R %Ld %s %s %s %d" time sender receiver signal attempt
  | Flow_hop { time; flow; stage; where_; dur } ->
    Printf.sprintf "L %Ld %d %s %s %Ld" time flow stage where_ dur

let event_of_line line =
  let fields =
    String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
  in
  let time_of s =
    match Int64.of_string_opt s with
    | Some t -> Ok t
    | None -> Error (Printf.sprintf "bad time %S in %S" s line)
  in
  match fields with
  | [ "E"; time; process; cycles ] -> (
    match time_of time, Int64.of_string_opt cycles with
    | Ok time, Some cycles -> Ok (Exec { time; process; cycles })
    | Error e, _ -> Error e
    | _, None -> Error (Printf.sprintf "bad cycles in %S" line))
  | [ "S"; time; sender; receiver; signal; words ] -> (
    match time_of time, int_of_string_opt words with
    | Ok time, Some words ->
      Ok (Signal { time; sender; receiver; signal; words; tag = -1 })
    | Error e, _ -> Error e
    | _, None -> Error (Printf.sprintf "bad words in %S" line))
  | [ "S"; time; sender; receiver; signal; words; tag ] -> (
    match time_of time, int_of_string_opt words, int_of_string_opt tag with
    | Ok time, Some words, Some tag when tag >= 0 ->
      Ok (Signal { time; sender; receiver; signal; words; tag })
    | Error e, _, _ -> Error e
    | _, _, _ -> Error (Printf.sprintf "bad words or tag in %S" line))
  | [ "T"; time; process; from_; to_ ] ->
    Result.map (fun time -> State_change { time; process; from_; to_ }) (time_of time)
  | [ "D"; time; process; signal ] ->
    Result.map (fun time -> Discard { time; process; signal }) (time_of time)
  | [ "F"; time; kind; target; info ] ->
    Result.map (fun time -> Fault { time; kind; target; info }) (time_of time)
  | [ "R"; time; sender; receiver; signal; attempt ] -> (
    match time_of time, int_of_string_opt attempt with
    | Ok time, Some attempt when attempt >= 0 ->
      Ok (Retransmit { time; sender; receiver; signal; attempt })
    | Error e, _ -> Error e
    | _, _ -> Error (Printf.sprintf "bad attempt in %S" line))
  | [ "L"; time; flow; stage; where_; dur ] -> (
    match time_of time, int_of_string_opt flow, Int64.of_string_opt dur with
    | Ok time, Some flow, Some dur when flow >= 0 && dur >= 0L ->
      Ok (Flow_hop { time; flow; stage; where_; dur })
    | Error e, _, _ -> Error e
    | _, _, _ -> Error (Printf.sprintf "bad flow or dur in %S" line))
  | _ -> Error (Printf.sprintf "unrecognised log line %S" line)

let to_lines t = List.map event_to_line (events t)

let of_lines lines =
  let t = create () in
  let rec loop n = function
    | [] -> Ok t
    | line :: rest when String.trim line = "" -> loop (n + 1) rest
    | line :: rest -> (
      match event_of_line line with
      | Ok event ->
        record t event;
        loop (n + 1) rest
      | Error e -> Error (Printf.sprintf "line %d: %s" n e))
  in
  loop 1 lines

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun event ->
          output_string oc (event_to_line event);
          output_char oc '\n')
        (events t))

let load path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec read acc =
          match input_line ic with
          | line -> read (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        of_lines (read []))
