(** Discrete-event simulation kernel.

    Time is in integer nanoseconds.  Events scheduled for the same time
    fire in scheduling order (a monotone sequence number breaks ties), so
    simulations are fully deterministic. *)

type t

type handle
(** A scheduled event; may be cancelled before it fires. *)

type backend = [ `Binary_heap | `Calendar ]
(** Event-queue implementation.  Both dequeue in the identical
    [(time, seq)] total order, so the choice never changes a
    simulation's trace — [`Calendar] ({!Calendar}) has O(1) expected
    operations on the quasi-periodic event populations simulations
    produce and is what the compiled engine uses; [`Binary_heap] is the
    reference. *)

val create : ?backend:backend -> ?obs:Obs.Scope.t -> unit -> t
(** [backend] defaults to [`Binary_heap].  [obs] receives kernel
    metrics (events scheduled/fired, queue high-water mark,
    cancelled-entry churn, clock-advance distribution); defaults to a
    no-op scope. *)

val now : t -> int64

val now_ns : t -> int
(** The clock as a native int — the clock is stored unboxed, so this is
    the allocation-free read the hot path wants ({!now} boxes). *)

val schedule : t -> delay:int64 -> (unit -> unit) -> handle
(** Schedule a callback [delay] ns from now.  Raises [Invalid_argument]
    on negative delays. *)

val schedule_at : t -> time:int64 -> (unit -> unit) -> handle
(** Absolute-time variant; the time must not be in the past. *)

val schedule_ns : t -> delay:int -> (unit -> unit) -> handle
val schedule_at_ns : t -> time:int -> (unit -> unit) -> handle
(** Native-int variants of {!schedule} / {!schedule_at}: same
    semantics, no [int64] boxing on the way in. *)

val cancel : handle -> unit
(** Idempotent; cancelling an already-fired event is a no-op. *)

val cancelled : handle -> bool

val rearm_ns : t -> handle -> delay:int -> (unit -> unit) -> handle
(** [rearm_ns t h ~delay f] is semantically [cancel h; schedule_ns t
    ~delay f], returning the armed handle.  When [h] is a previous
    arming of the same (physically equal) callback, backends may re-key
    [h] in place instead of allocating — the repeated re-arm pattern of
    an EFSM After timer costs nothing in steady state.  Ordering is
    identical to the eager cancel-and-schedule path. *)

val never : handle
(** A permanently-dead handle ([cancelled never] is [true]); an
    allocation-free initial value for mutable handle slots. *)

val step : t -> bool
(** Fire the earliest pending event.  Returns [false] when the queue is
    empty (time does not advance). *)

val run : ?until:int64 -> t -> int
(** Fire events until the queue is empty or the next event is strictly
    after [until]; returns the number of events fired.  With [until],
    time is left at [min until (time of last fired event)]'s max — i.e.
    at [until] if the horizon was reached. *)

val pending : t -> int
(** Number of live (non-cancelled) events still queued. *)
