type policy = Fifo | Priority_preemptive

(* Times and cycle counts are native ints end to end (the [int64]
   entry points convert at the boundary), so a submit/dispatch/complete
   round allocates no number boxes. *)
type job = {
  (* all fields mutable: completed job records go on a per-scheduler
     free list and are refilled in place by the next submit, so the
     steady state allocates no job records at all *)
  mutable task : string;
  mutable priority : int;
  mutable flow : int;  (** causal flow id the job belongs to; -1 = none *)
  mutable remaining_cycles : int;
  mutable seq : int;  (** arrival order; ties broken FIFO *)
  mutable ready_since : int;  (** last time the job entered the ready queue *)
  mutable on_complete : unit -> unit;
  mutable next_free : job;  (** free-list link; [== no_job] = end *)
}

(* Sentinel for "nothing running": the running-job state lives in flat
   mutable fields (no [running option] record per dispatch), and the
   completion event is one shared closure per scheduler rather than one
   per dispatch.  That is sound because [Engine.cancel] always precedes
   any change of the running job (preemption, crash), so a completion
   that actually fires always refers to the job currently in
   [t.running].  [seq = -1] can never collide with a real job. *)
let rec no_job =
  {
    task = "";
    priority = min_int;
    flow = -1;
    remaining_cycles = 0;
    seq = -1;
    ready_since = 0;
    on_complete = ignore;
    next_free = no_job;
  }

type t = {
  engine : Engine.t;
  name : string;
  policy : policy;
  frequency_mhz : int;
  perf_factor : float;
  mutable queue : job list;
  mutable running : job;  (** [== no_job] when idle *)
  mutable run_started : int;
  mutable run_completion : Engine.handle;
  mutable run_scale : float;
      (** slowdown factor in force when the running job was dispatched *)
  mutable completion_fn : unit -> unit;  (** shared; completes [running] *)
  mutable free : job;  (** free list of recycled job records *)
  mutable crashed : bool;
  mutable speed_scale : float;
      (** > 1.0 stretches job durations (transient slowdown fault) *)
  mutable busy_ns : int;
  mutable executed_cycles : int;
  mutable next_seq : int;
  mutable queue_len : int;
  mutable queue_high_water : int;
      (** peak ready-queue length, maintained unconditionally so reports
          can read it without a live metrics scope *)
  tracer : Obs.Tracer.t;
  track : string;  (** tracing lane, "rtos/<name>" *)
  obs_on : bool;
  trace_on : bool;
  m_jobs : Obs.Metrics.counter;
  m_preemptions : Obs.Metrics.counter;
  m_queue_depth : Obs.Metrics.gauge;
  m_sched_latency : Obs.Metrics.histogram;
}

let name t = t.name
let policy t = t.policy

let cycles_to_ns_i t cycles =
  (* ns = cycles * 1000 / MHz, rounded up so work never takes zero time. *)
  ((cycles * 1000) + t.frequency_mhz - 1) / t.frequency_mhz

let cycles_to_ns t cycles = Int64.of_int (cycles_to_ns_i t (Int64.to_int cycles))

let ns_to_cycles t ns = ns * t.frequency_mhz / 1000

let scale_cycles t cycles =
  let scaled = int_of_float (float_of_int cycles /. t.perf_factor) in
  if scaled < 1 then 1 else scaled

let better t a b =
  match t.policy with
  | Fifo -> a.seq < b.seq
  | Priority_preemptive ->
    a.priority > b.priority || (a.priority = b.priority && a.seq < b.seq)

(* [better] is a strict total order (seq is unique), so the minimum is
   independent of list order — the queue is a prepend-only bag.  Both
   helpers are plain recursions, not fold/filter, so a scan allocates
   no closures and removal copies only the prefix before the hit. *)
let rec find_best t best = function
  | [] -> best
  | j :: rest -> find_best t (if better t j best then j else best) rest

let rec remove_job best = function
  | [] -> []
  | j :: rest -> if j == best then rest else j :: remove_job best rest

(* A finished run slice (completion or preemption) becomes one span on
   the scheduler's trace lane.  Callers guard on [t.trace_on] and call
   before clearing [t.running]. *)
let slice_span t ~preempted =
  let job = t.running in
  let now = Engine.now_ns t.engine in
  let args =
    [
      ("priority", Obs.Span.Int job.priority);
      ("preempted", Obs.Span.Bool preempted);
    ]
  in
  Obs.Tracer.complete t.tracer ~ts_ns:(Int64.of_int t.run_started)
    ~dur_ns:(Int64.of_int (now - t.run_started)) ~cat:"rtos" ~track:t.track
    ~args:
      (if job.flow >= 0 then ("flow", Obs.Span.Int job.flow) :: args
       else args)
    job.task

(* Recycle a finished job record; drop the closure and task references
   so the free list pins nothing. *)
let release t job =
  job.on_complete <- ignore;
  job.task <- "";
  job.next_free <- t.free;
  t.free <- job

let rec dispatch t =
  if t.running == no_job && not t.crashed then
    match t.queue with
    | [] -> ()
    | first :: rest ->
      let job = find_best t first rest in
      t.queue <- (if job == first then rest else remove_job job t.queue);
      t.queue_len <- t.queue_len - 1;
      run_job t job

and run_job t job =
  let scale = t.speed_scale in
  let duration =
    let d = cycles_to_ns_i t job.remaining_cycles in
    if scale = 1.0 then d
    else
      let stretched = int_of_float (ceil (float_of_int d *. scale)) in
      max d stretched
  in
  let started_at = Engine.now_ns t.engine in
  (if t.obs_on then begin
     Obs.Metrics.set t.m_queue_depth t.queue_len;
     Obs.Metrics.observe t.m_sched_latency (started_at - job.ready_since)
   end);
  t.running <- job;
  t.run_started <- started_at;
  t.run_scale <- scale;
  t.run_completion <- Engine.schedule_ns t.engine ~delay:duration t.completion_fn

and complete_running t =
  let job = t.running in
  if job != no_job then begin
    if t.trace_on then slice_span t ~preempted:false;
    t.busy_ns <- t.busy_ns + (Engine.now_ns t.engine - t.run_started);
    t.executed_cycles <- t.executed_cycles + job.remaining_cycles;
    job.remaining_cycles <- 0;
    t.running <- no_job;
    let k = job.on_complete in
    release t job;
    k ();
    dispatch t
  end

let create ~engine ~name ~policy ~frequency_mhz ?(perf_factor = 1.0) ?obs () =
  if frequency_mhz <= 0 then invalid_arg "Sim.Rtos.create: frequency";
  if perf_factor <= 0.0 then invalid_arg "Sim.Rtos.create: perf_factor";
  let obs = match obs with Some s -> s | None -> Obs.Scope.null () in
  let metrics = Obs.Scope.metrics obs in
  let metric suffix = "sim.rtos." ^ name ^ "." ^ suffix in
  let t =
    {
      engine;
      name;
      policy;
      frequency_mhz;
      perf_factor;
      queue = [];
      running = no_job;
      free = no_job;
      run_started = 0;
      run_completion = Engine.never;
      run_scale = 1.0;
      completion_fn = ignore;
      crashed = false;
      speed_scale = 1.0;
      busy_ns = 0;
      executed_cycles = 0;
      next_seq = 0;
      queue_len = 0;
      queue_high_water = 0;
      tracer = Obs.Scope.tracer obs;
      track = "rtos/" ^ name;
      obs_on = Obs.Scope.live obs;
      trace_on = Obs.Tracer.enabled (Obs.Scope.tracer obs);
      m_jobs = Obs.Metrics.counter metrics (metric "jobs");
      m_preemptions = Obs.Metrics.counter metrics (metric "preemptions");
      m_queue_depth = Obs.Metrics.gauge metrics (metric "queue_depth");
      m_sched_latency = Obs.Metrics.histogram metrics (metric "sched_latency_ns");
    }
  in
  t.completion_fn <- (fun () -> complete_running t);
  t

(* Charge the partial slice of the running job and stop it; shared by
   preemption and crash.  Leaves [t.running] cleared with the victim's
   [remaining_cycles] updated; the completion event is cancelled. *)
let stop_running_slice t =
  let victim = t.running in
  let elapsed_ns = Engine.now_ns t.engine - t.run_started in
  let nominal_ns =
    if t.run_scale = 1.0 then elapsed_ns
    else int_of_float (float_of_int elapsed_ns /. t.run_scale)
  in
  let done_cycles = min victim.remaining_cycles (ns_to_cycles t nominal_ns) in
  Engine.cancel t.run_completion;
  if t.trace_on then slice_span t ~preempted:true;
  t.busy_ns <- t.busy_ns + elapsed_ns;
  t.executed_cycles <- t.executed_cycles + done_cycles;
  victim.remaining_cycles <- victim.remaining_cycles - done_cycles;
  t.running <- no_job

let preempt_if_needed t =
  match t.policy with
  | Fifo -> ()
  | Priority_preemptive ->
    if t.running != no_job then (
      match t.queue with
      | [] -> ()
      | first :: rest ->
        let challenger = find_best t first rest in
        if challenger.priority > t.running.priority then begin
          let victim = t.running in
          stop_running_slice t;
          if t.obs_on then Obs.Metrics.inc t.m_preemptions;
          if victim.remaining_cycles > 0 then begin
            victim.ready_since <- Engine.now_ns t.engine;
            t.queue <- victim :: t.queue;
            t.queue_len <- t.queue_len + 1;
            if t.queue_len > t.queue_high_water then
              t.queue_high_water <- t.queue_len
          end
          else begin
            (* Fully executed during its slice: finish it now. *)
            let k = victim.on_complete in
            release t victim;
            k ()
          end
        end)

let submit_i t ~task ~priority ?(flow = -1) ~cycles k =
  if cycles < 0 then invalid_arg "Sim.Rtos.submit: negative cycles";
  if t.crashed then ()  (* fail-stop: work submitted to a dead PE vanishes *)
  else begin
  let job =
    let f = t.free in
    if f != no_job then begin
      t.free <- f.next_free;
      f.next_free <- no_job;
      f.task <- task;
      f.priority <- priority;
      f.flow <- flow;
      f.remaining_cycles <- scale_cycles t (max 1 cycles);
      f.seq <- t.next_seq;
      f.ready_since <- Engine.now_ns t.engine;
      f.on_complete <- k;
      f
    end
    else
      {
        task;
        priority;
        flow;
        remaining_cycles = scale_cycles t (max 1 cycles);
        seq = t.next_seq;
        ready_since = Engine.now_ns t.engine;
        on_complete = k;
        next_free = no_job;
      }
  in
  t.next_seq <- t.next_seq + 1;
  match t.queue with
  | [] when t.running == no_job && not t.obs_on ->
    (* Uncontended submit on an idle scheduler: the job would be
       enqueued and immediately popped by [dispatch] — run it directly.
       The high-water mark still counts the phantom depth-1 moment so
       reports are identical to the queued path.  (With a live metrics
       scope the queued path runs instead, keeping gauge streams
       exact.) *)
    if t.queue_high_water < 1 then t.queue_high_water <- 1;
    run_job t job
  | _ ->
    (* prepend, not append: the best-job scan selects by (priority, seq),
       never by position, and O(1) beats rebuilding the list per submit *)
    t.queue <- job :: t.queue;
    t.queue_len <- t.queue_len + 1;
    if t.queue_len > t.queue_high_water then t.queue_high_water <- t.queue_len;
    (if t.obs_on then begin
       Obs.Metrics.inc t.m_jobs;
       Obs.Metrics.set t.m_queue_depth t.queue_len
     end);
    preempt_if_needed t;
    dispatch t
  end

let submit t ~task ~priority ?flow ~cycles k =
  if cycles < 0L then invalid_arg "Sim.Rtos.submit: negative cycles";
  submit_i t ~task ~priority ?flow ~cycles:(Int64.to_int cycles) k

let crash t =
  if not t.crashed then begin
    (* Account the partial slice, like a preemption that never resumes. *)
    if t.running != no_job then stop_running_slice t;
    t.queue <- [];
    t.queue_len <- 0;
    t.crashed <- true;
    if t.obs_on then Obs.Metrics.set t.m_queue_depth 0
  end

let crashed t = t.crashed

let set_speed_scale t scale =
  if scale <= 0.0 then invalid_arg "Sim.Rtos.set_speed_scale: non-positive";
  (* Takes effect at the next dispatch; the running slice keeps the
     factor it was dispatched under. *)
  t.speed_scale <- scale

let busy_ns t = Int64.of_int t.busy_ns
let executed_cycles t = Int64.of_int t.executed_cycles
let queue_length t = t.queue_len
let queue_high_water t = t.queue_high_water
let idle t =
  match t.queue with [] -> t.running == no_job | _ :: _ -> false
