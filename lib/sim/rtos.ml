type policy = Fifo | Priority_preemptive

type job = {
  task : string;
  priority : int;
  flow : int;  (** causal flow id the job belongs to; -1 = none *)
  mutable remaining_cycles : int64;
  seq : int;  (** arrival order; ties broken FIFO *)
  mutable ready_since : int64;  (** last time the job entered the ready queue *)
  on_complete : unit -> unit;
}

type running = {
  job : job;
  started_at : int64;
  completion : Engine.handle;
  scale : float;  (** slowdown factor in force when dispatched *)
}

type t = {
  engine : Engine.t;
  name : string;
  policy : policy;
  frequency_mhz : int;
  perf_factor : float;
  mutable queue : job list;
  mutable running : running option;
  mutable crashed : bool;
  mutable speed_scale : float;
      (** > 1.0 stretches job durations (transient slowdown fault) *)
  mutable busy_ns : int64;
  mutable executed_cycles : int64;
  mutable next_seq : int;
  tracer : Obs.Tracer.t;
  track : string;  (** tracing lane, "rtos/<name>" *)
  obs_on : bool;
  trace_on : bool;
  m_jobs : Obs.Metrics.counter;
  m_preemptions : Obs.Metrics.counter;
  m_queue_depth : Obs.Metrics.gauge;
  m_sched_latency : Obs.Metrics.histogram;
}

let create ~engine ~name ~policy ~frequency_mhz ?(perf_factor = 1.0) ?obs () =
  if frequency_mhz <= 0 then invalid_arg "Sim.Rtos.create: frequency";
  if perf_factor <= 0.0 then invalid_arg "Sim.Rtos.create: perf_factor";
  let obs = match obs with Some s -> s | None -> Obs.Scope.null () in
  let metrics = Obs.Scope.metrics obs in
  let metric suffix = "sim.rtos." ^ name ^ "." ^ suffix in
  {
    engine;
    name;
    policy;
    frequency_mhz;
    perf_factor;
    queue = [];
    running = None;
    crashed = false;
    speed_scale = 1.0;
    busy_ns = 0L;
    executed_cycles = 0L;
    next_seq = 0;
    tracer = Obs.Scope.tracer obs;
    track = "rtos/" ^ name;
    obs_on = Obs.Scope.live obs;
    trace_on = Obs.Tracer.enabled (Obs.Scope.tracer obs);
    m_jobs = Obs.Metrics.counter metrics (metric "jobs");
    m_preemptions = Obs.Metrics.counter metrics (metric "preemptions");
    m_queue_depth = Obs.Metrics.gauge metrics (metric "queue_depth");
    m_sched_latency = Obs.Metrics.histogram metrics (metric "sched_latency_ns");
  }

let name t = t.name
let policy t = t.policy

let cycles_to_ns t cycles =
  (* ns = cycles * 1000 / MHz, rounded up so work never takes zero time. *)
  let numerator = Int64.mul cycles 1000L in
  let mhz = Int64.of_int t.frequency_mhz in
  Int64.div (Int64.add numerator (Int64.sub mhz 1L)) mhz

let ns_to_cycles t ns =
  Int64.div (Int64.mul ns (Int64.of_int t.frequency_mhz)) 1000L

let scale_cycles t cycles =
  let scaled = Int64.of_float (Int64.to_float cycles /. t.perf_factor) in
  if scaled < 1L then 1L else scaled

let better t a b =
  match t.policy with
  | Fifo -> a.seq < b.seq
  | Priority_preemptive ->
    a.priority > b.priority || (a.priority = b.priority && a.seq < b.seq)

let pop_best t =
  match t.queue with
  | [] -> None
  | first :: rest ->
    let best = List.fold_left (fun acc j -> if better t j acc then j else acc) first rest in
    t.queue <- List.filter (fun j -> j != best) t.queue;
    Some best

(* A finished run slice (completion or preemption) becomes one span on
   the scheduler's trace lane.  Callers guard on [t.trace_on]. *)
let slice_span t (r : running) ~preempted =
  let now = Engine.now t.engine in
  let args =
    [
      ("priority", Obs.Span.Int r.job.priority);
      ("preempted", Obs.Span.Bool preempted);
    ]
  in
  Obs.Tracer.complete t.tracer ~ts_ns:r.started_at
    ~dur_ns:(Int64.sub now r.started_at) ~cat:"rtos" ~track:t.track
    ~args:
      (if r.job.flow >= 0 then ("flow", Obs.Span.Int r.job.flow) :: args
       else args)
    r.job.task

let rec dispatch t =
  match t.running with
  | Some _ -> ()
  | None when t.crashed -> ()
  | None -> (
    match pop_best t with
    | None -> ()
    | Some job ->
      let scale = t.speed_scale in
      let duration =
        let d = cycles_to_ns t job.remaining_cycles in
        if scale = 1.0 then d
        else
          let stretched = Int64.of_float (ceil (Int64.to_float d *. scale)) in
          max d stretched
      in
      let started_at = Engine.now t.engine in
      (if t.obs_on then begin
         Obs.Metrics.set t.m_queue_depth (List.length t.queue);
         Obs.Metrics.observe t.m_sched_latency
           (Int64.to_int (Int64.sub started_at job.ready_since))
       end);
      let completion =
        Engine.schedule t.engine ~delay:duration (fun () -> complete t job)
      in
      t.running <- Some { job; started_at; completion; scale })

and complete t job =
  (match t.running with
  | Some r when r.job == job ->
    if t.trace_on then slice_span t r ~preempted:false;
    t.busy_ns <- Int64.add t.busy_ns (Int64.sub (Engine.now t.engine) r.started_at);
    t.executed_cycles <- Int64.add t.executed_cycles job.remaining_cycles;
    job.remaining_cycles <- 0L;
    t.running <- None
  | Some _ | None -> ());
  job.on_complete ();
  dispatch t

let preempt_if_needed t =
  match t.policy, t.running with
  | Fifo, _ | _, None -> ()
  | Priority_preemptive, Some r -> (
    match t.queue with
    | [] -> ()
    | queue ->
      let challenger =
        List.fold_left (fun acc j -> if better t j acc then j else acc)
          (List.hd queue) (List.tl queue)
      in
      if challenger.priority > r.job.priority then begin
        (* Account for the cycles the victim already executed. *)
        let elapsed_ns = Int64.sub (Engine.now t.engine) r.started_at in
        let nominal_ns =
          if r.scale = 1.0 then elapsed_ns
          else Int64.of_float (Int64.to_float elapsed_ns /. r.scale)
        in
        let done_cycles = min r.job.remaining_cycles (ns_to_cycles t nominal_ns) in
        Engine.cancel r.completion;
        if t.trace_on then slice_span t r ~preempted:true;
        if t.obs_on then Obs.Metrics.inc t.m_preemptions;
        t.busy_ns <- Int64.add t.busy_ns elapsed_ns;
        t.executed_cycles <- Int64.add t.executed_cycles done_cycles;
        r.job.remaining_cycles <- Int64.sub r.job.remaining_cycles done_cycles;
        t.running <- None;
        if r.job.remaining_cycles > 0L then begin
          r.job.ready_since <- Engine.now t.engine;
          t.queue <- r.job :: t.queue
        end
        else
          (* Fully executed during its slice: finish it now. *)
          r.job.on_complete ()
      end)

let submit t ~task ~priority ?(flow = -1) ~cycles k =
  if cycles < 0L then invalid_arg "Sim.Rtos.submit: negative cycles";
  if t.crashed then ()  (* fail-stop: work submitted to a dead PE vanishes *)
  else begin
  let job =
    {
      task;
      priority;
      flow;
      remaining_cycles = scale_cycles t (max 1L cycles);
      seq = t.next_seq;
      ready_since = Engine.now t.engine;
      on_complete = k;
    }
  in
  t.next_seq <- t.next_seq + 1;
  t.queue <- t.queue @ [ job ];
  (if t.obs_on then begin
     Obs.Metrics.inc t.m_jobs;
     Obs.Metrics.set t.m_queue_depth (List.length t.queue)
   end);
  preempt_if_needed t;
  dispatch t
  end

let crash t =
  if not t.crashed then begin
    (match t.running with
    | Some r ->
      (* Account the partial slice, like a preemption that never resumes. *)
      let elapsed_ns = Int64.sub (Engine.now t.engine) r.started_at in
      let nominal_ns =
        if r.scale = 1.0 then elapsed_ns
        else Int64.of_float (Int64.to_float elapsed_ns /. r.scale)
      in
      let done_cycles =
        min r.job.remaining_cycles (ns_to_cycles t nominal_ns)
      in
      Engine.cancel r.completion;
      if t.trace_on then slice_span t r ~preempted:true;
      t.busy_ns <- Int64.add t.busy_ns elapsed_ns;
      t.executed_cycles <- Int64.add t.executed_cycles done_cycles;
      t.running <- None
    | None -> ());
    t.queue <- [];
    t.crashed <- true;
    if t.obs_on then Obs.Metrics.set t.m_queue_depth 0
  end

let crashed t = t.crashed

let set_speed_scale t scale =
  if scale <= 0.0 then invalid_arg "Sim.Rtos.set_speed_scale: non-positive";
  (* Takes effect at the next dispatch; the running slice keeps the
     factor it was dispatched under. *)
  t.speed_scale <- scale

let busy_ns t = t.busy_ns
let executed_cycles t = t.executed_cycles
let queue_length t = List.length t.queue
let idle t =
  match t.running, t.queue with None, [] -> true | _, _ -> false
