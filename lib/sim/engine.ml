type handle = {
  time : int64;
  seq : int;
  callback : unit -> unit;
  mutable live : bool;
}

(* A binary min-heap ordered by (time, seq).  The heap may contain
   cancelled entries; they are skipped on pop, which keeps cancel O(1). *)
type t = {
  mutable heap : handle array;
  mutable size : int;
  mutable clock : int64;
  mutable next_seq : int;
  (* Pre-resolved metric handles, updated only when [obs_on]; with a
     null scope every hook costs one branch on this boolean. *)
  obs_on : bool;
  m_fired : Obs.Metrics.counter;
  m_scheduled : Obs.Metrics.counter;
  m_dead_dropped : Obs.Metrics.counter;
  m_heap_peak : Obs.Metrics.gauge;
  m_clock_advance : Obs.Metrics.histogram;
}

let dummy =
  { time = 0L; seq = 0; callback = (fun () -> ()); live = false }

let create ?obs () =
  let scope = match obs with Some s -> s | None -> Obs.Scope.null () in
  let metrics = Obs.Scope.metrics scope in
  {
    heap = Array.make 64 dummy;
    size = 0;
    clock = 0L;
    next_seq = 0;
    obs_on = Obs.Scope.live scope;
    m_fired = Obs.Metrics.counter metrics "sim.engine.events_fired";
    m_scheduled = Obs.Metrics.counter metrics "sim.engine.events_scheduled";
    m_dead_dropped = Obs.Metrics.counter metrics "sim.engine.dead_entries_dropped";
    m_heap_peak = Obs.Metrics.gauge metrics "sim.engine.heap_size";
    m_clock_advance = Obs.Metrics.histogram metrics "sim.engine.clock_advance_ns";
  }

let now t = t.clock

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.size && before t.heap.(left) t.heap.(!smallest) then smallest := left;
  if right < t.size && before t.heap.(right) t.heap.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t handle =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) dummy in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- handle;
  t.size <- t.size + 1;
  sift_up t (t.size - 1);
  if t.obs_on then Obs.Metrics.set_peak t.m_heap_peak t.size

let remove_root t =
  t.size <- t.size - 1;
  t.heap.(0) <- t.heap.(t.size);
  t.heap.(t.size) <- dummy;
  if t.size > 0 then sift_down t 0

(* Drop cancelled entries lazily so pop and peek both see a live head. *)
let rec drop_dead t =
  if t.size > 0 && not t.heap.(0).live then begin
    remove_root t;
    if t.obs_on then Obs.Metrics.inc t.m_dead_dropped;
    drop_dead t
  end

let pop t =
  drop_dead t;
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    remove_root t;
    Some top
  end

let peek t =
  drop_dead t;
  if t.size = 0 then None else Some t.heap.(0)

let schedule_at t ~time callback =
  if time < t.clock then
    invalid_arg "Sim.Engine.schedule_at: time is in the past";
  let handle = { time; seq = t.next_seq; callback; live = true } in
  t.next_seq <- t.next_seq + 1;
  push t handle;
  if t.obs_on then Obs.Metrics.inc t.m_scheduled;
  handle

let schedule t ~delay callback =
  if delay < 0L then invalid_arg "Sim.Engine.schedule: negative delay";
  schedule_at t ~time:(Int64.add t.clock delay) callback

let cancel handle =
  if handle.live then handle.live <- false

let cancelled handle = not handle.live

let step t =
  match pop t with
  | None -> false
  | Some handle ->
    (if t.obs_on then begin
       let advance = Int64.sub handle.time t.clock in
       if advance > 0L then
         Obs.Metrics.observe t.m_clock_advance (Int64.to_int advance);
       Obs.Metrics.inc t.m_fired
     end);
    t.clock <- handle.time;
    handle.live <- false;
    handle.callback ();
    true

let run ?until t =
  let horizon = until in
  let rec loop fired =
    match peek t with
    | None -> fired
    | Some head -> (
      match horizon with
      | Some limit when head.time > limit ->
        t.clock <- max t.clock limit;
        fired
      | Some _ | None -> if step t then loop (fired + 1) else fired)
  in
  let fired = loop 0 in
  (match horizon with
  | Some limit when t.clock < limit && t.size = 0 -> t.clock <- limit
  | Some _ | None -> ());
  fired

let pending t =
  let count = ref 0 in
  for i = 0 to t.size - 1 do
    if t.heap.(i).live then incr count
  done;
  !count
