type handle = {
  mutable time : int;
      (** native-int ns — no [int64] box per scheduled event; mutable
          (with [seq]) only for {!rearm_ns}'s in-place re-keying *)
  mutable seq : int;
  callback : unit -> unit;
  mutable live : bool;
  mutable qnext : handle;
      (** intrusive calendar-bucket link ([== dummy] terminates): the
          handle doubles as its own queue cell, so the calendar backend
          enqueues without allocating *)
}

let rec dummy =
  { time = 0; seq = 0; callback = (fun () -> ()); live = false; qnext = dummy }

(* Intrusive twin of {!Calendar} (same Brown-1988 bucketed algorithm,
   same lazy deletion and memoized minimum — keep the two in sync): the
   handle itself is the bucket cell via [qnext], so steady-state
   scheduling allocates only the handle the caller already pays for.
   [dummy] doubles as the nil link/result sentinel; it is never
   scheduled, so physical equality is unambiguous. *)
module Iq = struct
  type cal = {
    mutable buckets : handle array;
    mutable mask : int;
    mutable width : int;
    mutable size : int;
    mutable floor : int;
    mutable dead_dropped : int;
    mutable memo_time : int;
    mutable memo_seq : int;
    mutable memo_bucket : int;
  }

  let min_buckets = 64

  let create () =
    let n = 256 in
    {
      buckets = Array.make n dummy;
      mask = n - 1;
      width = 1_024;
      size = 0;
      floor = 0;
      dead_dropped = 0;
      memo_time = 0;
      memo_seq = 0;
      memo_bucket = -1;
    }

  let length t = t.size
  let dead_dropped t = t.dead_dropped
  let index t time = (time / t.width) land t.mask

  let before ~time ~seq h =
    h == dummy || time < h.time || (time = h.time && seq < h.seq)

  let rec insert_after cell h =
    if before ~time:cell.time ~seq:cell.seq h.qnext then begin
      cell.qnext <- h.qnext;
      h.qnext <- cell
    end
    else insert_after cell h.qnext

  let bucket_insert t b cell =
    if before ~time:cell.time ~seq:cell.seq t.buckets.(b) then begin
      cell.qnext <- t.buckets.(b);
      t.buckets.(b) <- cell
    end
    else insert_after cell t.buckets.(b)

  let sorted_live t =
    let acc = ref [] in
    Array.iter
      (fun head ->
        let rec walk h =
          if h != dummy then begin
            if h.live then acc := h :: !acc
            else t.dead_dropped <- t.dead_dropped + 1;
            walk h.qnext
          end
        in
        walk head)
      t.buckets;
    List.sort
      (fun a b ->
        if a.time = b.time then compare a.seq b.seq else compare a.time b.time)
      !acc

  let rebuild t entries n_buckets =
    let n_live = List.length entries in
    let width =
      match entries with
      | [] | [ _ ] -> t.width
      | h0 :: _ ->
        let hn = List.nth entries (n_live - 1) in
        let avg = (hn.time - h0.time) / (n_live - 1) in
        let w = 3 * avg in
        if w < 1 then 1 else w
    in
    t.buckets <- Array.make n_buckets dummy;
    t.mask <- n_buckets - 1;
    t.width <- width;
    t.size <- n_live;
    t.memo_bucket <- -1;
    List.iter
      (fun h ->
        let b = index t h.time in
        h.qnext <- t.buckets.(b);
        t.buckets.(b) <- h)
      (List.rev entries)

  let maybe_grow t =
    let n = t.mask + 1 in
    if t.size > 2 * n then rebuild t (sorted_live t) (2 * n)

  let maybe_shrink t =
    let n = t.mask + 1 in
    if n > min_buckets && t.size < n / 8 then rebuild t (sorted_live t) (n / 2)

  let add t h =
    (if t.memo_bucket >= 0 then
       let mt = t.memo_time and ms = t.memo_seq in
       if not (mt < h.time || (mt = h.time && ms < h.seq)) then
         t.memo_bucket <- -1);
    bucket_insert t (index t h.time) h;
    t.size <- t.size + 1;
    maybe_grow t

  let rec drop_dead_head t b =
    let h = t.buckets.(b) in
    if h != dummy && not h.live then begin
      t.buckets.(b) <- h.qnext;
      t.size <- t.size - 1;
      t.dead_dropped <- t.dead_dropped + 1;
      drop_dead_head t b
    end

  let remove_head t b =
    t.buckets.(b) <- t.buckets.(b).qnext;
    t.size <- t.size - 1

  let direct_min t =
    t.memo_bucket <- -1;
    for b = 0 to t.mask do
      drop_dead_head t b;
      let h = t.buckets.(b) in
      if
        h != dummy
        && (t.memo_bucket < 0
           || h.time < t.memo_time
           || (h.time = t.memo_time && h.seq < t.memo_seq))
      then begin
        t.memo_time <- h.time;
        t.memo_seq <- h.seq;
        t.memo_bucket <- b
      end
    done;
    t.memo_bucket >= 0

  let rec scan_lap t start lap_top k =
    if k > t.mask then direct_min t
    else begin
      let b = (start + k) land t.mask in
      drop_dead_head t b;
      let h = t.buckets.(b) in
      if h != dummy && h.time < lap_top + (k * t.width) then begin
        t.memo_time <- h.time;
        t.memo_seq <- h.seq;
        t.memo_bucket <- b;
        true
      end
      else scan_lap t start lap_top (k + 1)
    end

  let scan_min t =
    if t.size = 0 then begin
      t.memo_bucket <- -1;
      false
    end
    else scan_lap t (index t t.floor) (((t.floor / t.width) + 1) * t.width) 0

  let find_min t =
    if t.memo_bucket >= 0 then begin
      let h = t.buckets.(t.memo_bucket) in
      if h != dummy && h.time = t.memo_time && h.seq = t.memo_seq && h.live
      then true
      else scan_min t
    end
    else scan_min t

  let pop_or_dummy t =
    if not (find_min t) then dummy
    else begin
      let b = t.memo_bucket in
      let h = t.buckets.(b) in
      remove_head t b;
      t.floor <- t.memo_time;
      t.memo_bucket <- -1;
      maybe_shrink t;
      h
    end

  let peek_or_dummy t =
    if not (find_min t) then dummy else t.buckets.(t.memo_bucket)

  (* Unlink [h] if present (it may already have been lazily dropped).
     [index] uses the current geometry, which is also where any rebuild
     re-placed the entry, so the bucket is always the right one. *)
  let remove t h =
    let b = index t h.time in
    let head = t.buckets.(b) in
    if head == h then begin
      t.buckets.(b) <- h.qnext;
      t.size <- t.size - 1
    end
    else if head != dummy then begin
      let rec unlink prev =
        let cur = prev.qnext in
        if cur == h then begin
          prev.qnext <- cur.qnext;
          t.size <- t.size - 1
        end
        else if cur != dummy then unlink cur
      in
      unlink head
    end

  let iter t f =
    Array.iter
      (fun head ->
        let rec walk h =
          if h != dummy then begin
            f h;
            walk h.qnext
          end
        in
        walk head)
      t.buckets
end

type backend = [ `Binary_heap | `Calendar ]

(* Two interchangeable event queues ordered by (time, seq):

   - [Heap]: a binary min-heap; cancelled entries are skipped on pop,
     which keeps cancel O(1).
   - [Cal]: a bucketed calendar queue ({!Iq}, the intrusive twin of
     {!Calendar}), O(1) expected
     enqueue/dequeue for the quasi-periodic populations simulations
     produce; the compiled engine's default.

   Both dequeue in the identical (time, seq) total order, so a
   simulation's trace does not depend on the backend (the differential
   suite checks this).

   The clock and every queue key are native ints: the public [int64]
   entry points convert once at the boundary, and the [_ns] variants
   let the runtime's hot path skip the boxing altogether. *)
type queue =
  | Heap of heap
  | Cal of Iq.cal

and heap = { mutable arr : handle array; mutable size : int }

type t = {
  queue : queue;
  mutable clock : int;
  mutable next_seq : int;
  mutable cal_dead_seen : int;
      (** calendar drop count already forwarded to [m_dead_dropped] *)
  (* Pre-resolved metric handles, updated only when [obs_on]; with a
     null scope every hook costs one branch on this boolean. *)
  obs_on : bool;
  m_fired : Obs.Metrics.counter;
  m_scheduled : Obs.Metrics.counter;
  m_dead_dropped : Obs.Metrics.counter;
  m_heap_peak : Obs.Metrics.gauge;
  m_clock_advance : Obs.Metrics.histogram;
}

let create ?(backend = `Binary_heap) ?obs () =
  let scope = match obs with Some s -> s | None -> Obs.Scope.null () in
  let metrics = Obs.Scope.metrics scope in
  {
    queue =
      (match backend with
      | `Binary_heap -> Heap { arr = Array.make 64 dummy; size = 0 }
      | `Calendar -> Cal (Iq.create ()));
    clock = 0;
    next_seq = 0;
    cal_dead_seen = 0;
    obs_on = Obs.Scope.live scope;
    m_fired = Obs.Metrics.counter metrics "sim.engine.events_fired";
    m_scheduled = Obs.Metrics.counter metrics "sim.engine.events_scheduled";
    m_dead_dropped = Obs.Metrics.counter metrics "sim.engine.dead_entries_dropped";
    m_heap_peak = Obs.Metrics.gauge metrics "sim.engine.heap_size";
    m_clock_advance = Obs.Metrics.histogram metrics "sim.engine.clock_advance_ns";
  }

let now_ns t = t.clock
let now t = Int64.of_int t.clock

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap h i j =
  let tmp = h.arr.(i) in
  h.arr.(i) <- h.arr.(j);
  h.arr.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before h.arr.(i) h.arr.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < h.size && before h.arr.(left) h.arr.(!smallest) then smallest := left;
  if right < h.size && before h.arr.(right) h.arr.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let heap_push h handle =
  if h.size = Array.length h.arr then begin
    let bigger = Array.make (2 * h.size) dummy in
    Array.blit h.arr 0 bigger 0 h.size;
    h.arr <- bigger
  end;
  h.arr.(h.size) <- handle;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let remove_root h =
  h.size <- h.size - 1;
  h.arr.(0) <- h.arr.(h.size);
  h.arr.(h.size) <- dummy;
  if h.size > 0 then sift_down h 0

(* Drop cancelled entries lazily so pop and peek both see a live head. *)
let rec drop_dead t h =
  if h.size > 0 && not h.arr.(0).live then begin
    remove_root h;
    if t.obs_on then Obs.Metrics.inc t.m_dead_dropped;
    drop_dead t h
  end

(* Forward the calendar's internal drop count to the kernel metric. *)
let sync_cal_dead t cal =
  if t.obs_on then begin
    let total = Iq.dead_dropped cal in
    if total > t.cal_dead_seen then begin
      Obs.Metrics.inc ~by:(total - t.cal_dead_seen) t.m_dead_dropped;
      t.cal_dead_seen <- total
    end
  end

let push t handle =
  (match t.queue with
  | Heap h -> heap_push h handle
  | Cal cal -> Iq.add cal handle);
  if t.obs_on then
    Obs.Metrics.set_peak t.m_heap_peak
      (match t.queue with Heap h -> h.size | Cal cal -> Iq.length cal)

(* [dummy] doubles as the empty sentinel so the run loop never boxes an
   option per fired event; [dummy] is never scheduled, so a physical
   equality check is unambiguous. *)
let pop_or_dummy t =
  match t.queue with
  | Heap h ->
    drop_dead t h;
    if h.size = 0 then dummy
    else begin
      let top = h.arr.(0) in
      remove_root h;
      top
    end
  | Cal cal ->
    let popped = Iq.pop_or_dummy cal in
    sync_cal_dead t cal;
    popped

let peek_or_dummy t =
  match t.queue with
  | Heap h ->
    drop_dead t h;
    if h.size = 0 then dummy else h.arr.(0)
  | Cal cal ->
    let head = Iq.peek_or_dummy cal in
    sync_cal_dead t cal;
    head

let queue_size t =
  match t.queue with Heap h -> h.size | Cal cal -> Iq.length cal

let schedule_at_ns t ~time callback =
  if time < t.clock then
    invalid_arg "Sim.Engine.schedule_at: time is in the past";
  let handle = { time; seq = t.next_seq; callback; live = true; qnext = dummy } in
  t.next_seq <- t.next_seq + 1;
  push t handle;
  if t.obs_on then Obs.Metrics.inc t.m_scheduled;
  handle

let schedule_ns t ~delay callback =
  if delay < 0 then invalid_arg "Sim.Engine.schedule: negative delay";
  schedule_at_ns t ~time:(t.clock + delay) callback

let schedule_at t ~time callback = schedule_at_ns t ~time:(Int64.to_int time) callback

let schedule t ~delay callback =
  if delay < 0L then invalid_arg "Sim.Engine.schedule: negative delay";
  schedule_ns t ~delay:(Int64.to_int delay) callback

let cancel handle =
  if handle.live then handle.live <- false

(* Semantically [cancel handle; schedule_ns t ~delay callback] — the
   re-arm pattern of a state machine's After timer.  On the calendar
   backend, when [handle] is the caller's own previous arming of the
   same [callback], the handle is unlinked and re-keyed in place: no
   allocation and no dead entry left to churn through bucket chains.
   The fresh seq is drawn exactly where the eager path would draw it,
   so every (time, seq) tie across backends orders identically. *)
let rearm_ns t handle ~delay callback =
  if delay < 0 then invalid_arg "Sim.Engine.schedule: negative delay";
  match t.queue with
  | Cal cal when handle != dummy && handle.callback == callback ->
    Iq.remove cal handle;
    handle.time <- t.clock + delay;
    handle.seq <- t.next_seq;
    t.next_seq <- t.next_seq + 1;
    handle.live <- true;
    Iq.add cal handle;
    if t.obs_on then begin
      Obs.Metrics.inc t.m_scheduled;
      Obs.Metrics.set_peak t.m_heap_peak (Iq.length cal)
    end;
    handle
  | Cal _ | Heap _ ->
    cancel handle;
    schedule_ns t ~delay callback

let cancelled handle = not handle.live

let never = dummy

let fire t handle =
  (if t.obs_on then begin
     let advance = handle.time - t.clock in
     if advance > 0 then Obs.Metrics.observe t.m_clock_advance advance;
     Obs.Metrics.inc t.m_fired
   end);
  t.clock <- handle.time;
  handle.live <- false;
  handle.callback ()

let step t =
  let handle = pop_or_dummy t in
  if handle == dummy then false
  else begin
    fire t handle;
    true
  end

let run ?until t =
  (* [max_int] as the no-horizon limit keeps the loop option-free; no
     event time can reach it (the clock is 63-bit ns). *)
  let limit = match until with None -> max_int | Some l -> Int64.to_int l in
  let rec loop fired =
    let head = peek_or_dummy t in
    if head == dummy then fired
    else if head.time > limit then begin
      t.clock <- max t.clock limit;
      fired
    end
    else if step t then loop (fired + 1)
    else fired
  in
  let fired = loop 0 in
  if limit < max_int && t.clock < limit && queue_size t = 0 then
    t.clock <- limit;
  fired

let pending t =
  let count = ref 0 in
  (match t.queue with
  | Heap h ->
    for i = 0 to h.size - 1 do
      if h.arr.(i).live then incr count
    done
  | Cal cal -> Iq.iter cal (fun h -> if h.live then incr count));
  !count
