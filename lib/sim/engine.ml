type handle = {
  time : int64;
  seq : int;
  callback : unit -> unit;
  mutable live : bool;
}

type backend = [ `Binary_heap | `Calendar ]

(* Two interchangeable event queues ordered by (time, seq):

   - [Heap]: a binary min-heap; cancelled entries are skipped on pop,
     which keeps cancel O(1).
   - [Cal]: a bucketed calendar queue ({!Calendar}), O(1) expected
     enqueue/dequeue for the quasi-periodic populations simulations
     produce; the compiled engine's default.

   Both dequeue in the identical (time, seq) total order, so a
   simulation's trace does not depend on the backend (the differential
   suite checks this). *)
type queue =
  | Heap of heap
  | Cal of handle Calendar.t

and heap = { mutable arr : handle array; mutable size : int }

type t = {
  queue : queue;
  mutable clock : int64;
  mutable next_seq : int;
  mutable cal_dead_seen : int;
      (** calendar drop count already forwarded to [m_dead_dropped] *)
  (* Pre-resolved metric handles, updated only when [obs_on]; with a
     null scope every hook costs one branch on this boolean. *)
  obs_on : bool;
  m_fired : Obs.Metrics.counter;
  m_scheduled : Obs.Metrics.counter;
  m_dead_dropped : Obs.Metrics.counter;
  m_heap_peak : Obs.Metrics.gauge;
  m_clock_advance : Obs.Metrics.histogram;
}

let dummy =
  { time = 0L; seq = 0; callback = (fun () -> ()); live = false }

let create ?(backend = `Binary_heap) ?obs () =
  let scope = match obs with Some s -> s | None -> Obs.Scope.null () in
  let metrics = Obs.Scope.metrics scope in
  {
    queue =
      (match backend with
      | `Binary_heap -> Heap { arr = Array.make 64 dummy; size = 0 }
      | `Calendar -> Cal (Calendar.create ~live:(fun h -> h.live) ()));
    clock = 0L;
    next_seq = 0;
    cal_dead_seen = 0;
    obs_on = Obs.Scope.live scope;
    m_fired = Obs.Metrics.counter metrics "sim.engine.events_fired";
    m_scheduled = Obs.Metrics.counter metrics "sim.engine.events_scheduled";
    m_dead_dropped = Obs.Metrics.counter metrics "sim.engine.dead_entries_dropped";
    m_heap_peak = Obs.Metrics.gauge metrics "sim.engine.heap_size";
    m_clock_advance = Obs.Metrics.histogram metrics "sim.engine.clock_advance_ns";
  }

let now t = t.clock

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap h i j =
  let tmp = h.arr.(i) in
  h.arr.(i) <- h.arr.(j);
  h.arr.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before h.arr.(i) h.arr.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < h.size && before h.arr.(left) h.arr.(!smallest) then smallest := left;
  if right < h.size && before h.arr.(right) h.arr.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let heap_push h handle =
  if h.size = Array.length h.arr then begin
    let bigger = Array.make (2 * h.size) dummy in
    Array.blit h.arr 0 bigger 0 h.size;
    h.arr <- bigger
  end;
  h.arr.(h.size) <- handle;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let remove_root h =
  h.size <- h.size - 1;
  h.arr.(0) <- h.arr.(h.size);
  h.arr.(h.size) <- dummy;
  if h.size > 0 then sift_down h 0

(* Drop cancelled entries lazily so pop and peek both see a live head. *)
let rec drop_dead t h =
  if h.size > 0 && not h.arr.(0).live then begin
    remove_root h;
    if t.obs_on then Obs.Metrics.inc t.m_dead_dropped;
    drop_dead t h
  end

(* Forward the calendar's internal drop count to the kernel metric. *)
let sync_cal_dead t cal =
  if t.obs_on then begin
    let total = Calendar.dead_dropped cal in
    if total > t.cal_dead_seen then begin
      Obs.Metrics.inc ~by:(total - t.cal_dead_seen) t.m_dead_dropped;
      t.cal_dead_seen <- total
    end
  end

let push t handle =
  (match t.queue with
  | Heap h -> heap_push h handle
  | Cal cal -> Calendar.add cal ~time:handle.time ~seq:handle.seq handle);
  if t.obs_on then
    Obs.Metrics.set_peak t.m_heap_peak
      (match t.queue with Heap h -> h.size | Cal cal -> Calendar.length cal)

let pop t =
  match t.queue with
  | Heap h ->
    drop_dead t h;
    if h.size = 0 then None
    else begin
      let top = h.arr.(0) in
      remove_root h;
      Some top
    end
  | Cal cal ->
    let popped = Calendar.pop cal in
    sync_cal_dead t cal;
    popped

let peek t =
  match t.queue with
  | Heap h ->
    drop_dead t h;
    if h.size = 0 then None else Some h.arr.(0)
  | Cal cal ->
    let head = Calendar.peek cal in
    sync_cal_dead t cal;
    head

let queue_size t =
  match t.queue with Heap h -> h.size | Cal cal -> Calendar.length cal

let schedule_at t ~time callback =
  if time < t.clock then
    invalid_arg "Sim.Engine.schedule_at: time is in the past";
  let handle = { time; seq = t.next_seq; callback; live = true } in
  t.next_seq <- t.next_seq + 1;
  push t handle;
  if t.obs_on then Obs.Metrics.inc t.m_scheduled;
  handle

let schedule t ~delay callback =
  if delay < 0L then invalid_arg "Sim.Engine.schedule: negative delay";
  schedule_at t ~time:(Int64.add t.clock delay) callback

let cancel handle =
  if handle.live then handle.live <- false

let cancelled handle = not handle.live

let step t =
  match pop t with
  | None -> false
  | Some handle ->
    (if t.obs_on then begin
       let advance = Int64.sub handle.time t.clock in
       if advance > 0L then
         Obs.Metrics.observe t.m_clock_advance (Int64.to_int advance);
       Obs.Metrics.inc t.m_fired
     end);
    t.clock <- handle.time;
    handle.live <- false;
    handle.callback ();
    true

let run ?until t =
  let horizon = until in
  let rec loop fired =
    match peek t with
    | None -> fired
    | Some head -> (
      match horizon with
      | Some limit when head.time > limit ->
        t.clock <- max t.clock limit;
        fired
      | Some _ | None -> if step t then loop (fired + 1) else fired)
  in
  let fired = loop 0 in
  (match horizon with
  | Some limit when t.clock < limit && queue_size t = 0 -> t.clock <- limit
  | Some _ | None -> ());
  fired

let pending t =
  let count = ref 0 in
  (match t.queue with
  | Heap h ->
    for i = 0 to h.size - 1 do
      if h.arr.(i).live then incr count
    done
  | Cal cal -> Calendar.iter cal (fun h -> if h.live then incr count));
  !count
